package ede

import (
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

func engine() *Engine { return New(Config{}) } // zero cost model for tests

func TestPositionRuleUpdatesState(t *testing.T) {
	en := engine()
	en.Process(event.NewPosition(7, 1, 33.6, -84.4, 12000, 64))
	fs, ok := en.State().Get(7)
	if !ok {
		t.Fatal("flight 7 not tracked")
	}
	if fs.Lat != 33.6 || fs.Lon != -84.4 || fs.Alt != 12000 {
		t.Fatalf("position = %v,%v,%v", fs.Lat, fs.Lon, fs.Alt)
	}
	if fs.PositionUpdates != 1 {
		t.Fatalf("PositionUpdates = %d, want 1", fs.PositionUpdates)
	}
}

func TestCoalescedEventsCountByWeight(t *testing.T) {
	en := engine()
	e := event.NewPosition(7, 5, 1, 2, 3, 64)
	e.Coalesced = 10
	en.Process(e)
	fs, _ := en.State().Get(7)
	if fs.PositionUpdates != 10 {
		t.Fatalf("PositionUpdates = %d, want 10 (weighted)", fs.PositionUpdates)
	}
	if en.State().Processed() != 10 {
		t.Fatalf("Processed = %d, want 10", en.State().Processed())
	}
}

func TestStatusRuleMonotonic(t *testing.T) {
	en := engine()
	en.Process(event.NewStatus(3, 1, event.StatusLanded, 16))
	en.Process(event.NewStatus(3, 2, event.StatusBoarding, 16)) // stale
	fs, _ := en.State().Get(3)
	if fs.Status != event.StatusLanded {
		t.Fatalf("Status = %s, want landed", fs.Status)
	}
}

func TestBoardingRuleDerivesAllBoarded(t *testing.T) {
	en := engine()
	const pax = 3
	var derived []*event.Event
	for i := 0; i < pax; i++ {
		e := &event.Event{
			Type: event.TypeGateReader, Flight: 9, Seq: uint64(i), Coalesced: 1,
			Payload: []byte{pax, 0, 0, 0},
			VT:      vclock.VC{uint64(i + 1)},
		}
		d, _ := en.Process(e)
		derived = append(derived, d...)
	}
	if len(derived) != 1 {
		t.Fatalf("derived %d events, want 1 AllBoarded", len(derived))
	}
	if derived[0].Type != event.TypeAllBoarded || derived[0].Flight != 9 {
		t.Fatalf("derived = %s", derived[0])
	}
	fs, _ := en.State().Get(9)
	if !fs.AllBoarded || fs.PaxBoarded != pax {
		t.Fatalf("state = %+v", fs)
	}
	// Extra boardings must not re-derive.
	e := &event.Event{Type: event.TypeGateReader, Flight: 9, Coalesced: 1, Payload: []byte{pax, 0, 0, 0}}
	if more, _ := en.Process(e); len(more) != 0 {
		t.Fatalf("re-derived AllBoarded: %v", more)
	}
}

func TestBoardingRuleShortPayload(t *testing.T) {
	en := engine()
	e := &event.Event{Type: event.TypeGateReader, Flight: 1, Coalesced: 1, Payload: []byte{1}}
	if out, _ := en.Process(e); out != nil {
		t.Fatalf("derived %v from short payload", out)
	}
	fs, _ := en.State().Get(1)
	if fs.PaxExpected != 0 || fs.PaxBoarded != 1 {
		t.Fatalf("state = %+v", fs)
	}
}

func TestArrivalRuleDerivesOnce(t *testing.T) {
	en := engine()
	d, _ := en.Process(event.NewStatus(5, 1, event.StatusAtGate, 16))
	if len(d) != 1 || d[0].Type != event.TypeFlightArrived {
		t.Fatalf("derived = %v", d)
	}
	fs, _ := en.State().Get(5)
	if !fs.Arrived || fs.Status != event.StatusArrived {
		t.Fatalf("state = %+v", fs)
	}
	if d2, _ := en.Process(event.NewStatus(5, 2, event.StatusAtGate, 16)); len(d2) != 0 {
		t.Fatalf("second at-gate re-derived: %v", d2)
	}
}

func TestFlightArrivedEventAdvancesStatus(t *testing.T) {
	// A mirrored complex event (from the central site's tuple
	// collapse) must advance lifecycle state just like raw events.
	en := engine()
	e := &event.Event{Type: event.TypeFlightArrived, Flight: 4, Coalesced: 1}
	en.Process(e)
	fs, _ := en.State().Get(4)
	if fs.Status != event.StatusArrived {
		t.Fatalf("Status = %s, want arrived", fs.Status)
	}
}

func TestLastProcessedMergesTimestamps(t *testing.T) {
	en := engine()
	e1 := event.NewPosition(1, 1, 0, 0, 0, 32)
	e1.VT = vclock.VC{3, 0}
	e2 := event.NewStatus(1, 1, event.StatusLanded, 16)
	e2.VT = vclock.VC{3, 5}
	en.Process(e1)
	en.Process(e2)
	if got := en.LastProcessed(); got.Compare(vclock.VC{3, 5}) != vclock.Equal {
		t.Fatalf("LastProcessed = %v, want <3,5>", got)
	}
}

func TestLastProcessedEmptyInitially(t *testing.T) {
	en := engine()
	if got := en.LastProcessed(); got != nil {
		t.Fatalf("LastProcessed = %v, want nil", got)
	}
	en.Process(event.NewPosition(1, 1, 0, 0, 0, 32)) // unstamped
	if got := en.LastProcessed(); got != nil {
		t.Fatalf("LastProcessed after unstamped event = %v, want nil", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	en := New(Config{StatePadding: 16})
	en.Process(event.NewPosition(1, 1, 10, 20, 30000, 64))
	en.Process(event.NewStatus(2, 1, event.StatusLanded, 16))
	en.Process(&event.Event{Type: event.TypeGateReader, Flight: 3, Coalesced: 1, Payload: []byte{2, 0, 0, 0}})

	snap := en.State().Snapshot()
	if len(snap) != en.State().SnapshotSize() {
		t.Fatalf("snapshot %d bytes, SnapshotSize says %d", len(snap), en.State().SnapshotSize())
	}
	got, err := DecodeSnapshot(snap, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d flights, want 3", len(got))
	}
	if f1 := got[1]; f1.Lat != 10 || f1.Lon != 20 || f1.Alt != 30000 || f1.PositionUpdates != 1 {
		t.Fatalf("flight 1 = %+v", f1)
	}
	if f2 := got[2]; f2.Status != event.StatusLanded {
		t.Fatalf("flight 2 = %+v", f2)
	}
	if f3 := got[3]; f3.PaxExpected != 2 || f3.PaxBoarded != 1 {
		t.Fatalf("flight 3 = %+v", f3)
	}
}

func TestSnapshotFlags(t *testing.T) {
	en := engine()
	en.Process(&event.Event{Type: event.TypeGateReader, Flight: 1, Coalesced: 1, Payload: []byte{1, 0, 0, 0}})
	en.Process(event.NewStatus(2, 1, event.StatusAtGate, 16))
	got, err := DecodeSnapshot(en.State().Snapshot(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got[1].AllBoarded {
		t.Fatal("AllBoarded flag lost in round trip")
	}
	if !got[2].Arrived {
		t.Fatal("Arrived flag lost in round trip")
	}
}

func TestDecodeSnapshotErrors(t *testing.T) {
	if _, err := DecodeSnapshot([]byte{1, 2}, 0); err == nil {
		t.Fatal("short snapshot must fail")
	}
	en := engine()
	en.Process(event.NewPosition(1, 1, 0, 0, 0, 32))
	snap := en.State().Snapshot()
	if _, err := DecodeSnapshot(snap[:len(snap)-3], 0); err == nil {
		t.Fatal("truncated snapshot must fail")
	}
	if _, err := DecodeSnapshot(snap, 8); err == nil {
		t.Fatal("wrong padding must fail")
	}
}

func TestServeInitState(t *testing.T) {
	en := engine()
	en.Process(event.NewPosition(1, 1, 0, 0, 0, 32))
	snap := en.ServeInitState()
	if len(snap) != en.State().SnapshotSize() {
		t.Fatalf("init state %d bytes, want %d", len(snap), en.State().SnapshotSize())
	}
}

func TestReplicaConvergenceUnderFiltering(t *testing.T) {
	// Central processes every raw event; the mirror sees the filtered
	// stream: only the last of each run of 5 positions, with the run
	// folded into Coalesced. Their states must agree on everything
	// mirroring promises to preserve.
	central, mirror := engine(), engine()
	var lastPos *event.Event
	run := 0
	for i := 0; i < 50; i++ {
		e := event.NewPosition(1, uint64(i), float64(i), float64(-i), 10000, 64)
		central.Process(e)
		lastPos = e
		run++
		if run == 5 {
			m := lastPos.Clone()
			m.Coalesced = 5
			mirror.Process(m)
			run = 0
		}
	}
	st := event.NewStatus(1, 1, event.StatusLanded, 16)
	central.Process(st)
	mirror.Process(st.Clone())

	cf, _ := central.State().Get(1)
	mf, _ := mirror.State().Get(1)
	if cf.Lat != mf.Lat || cf.Lon != mf.Lon {
		t.Fatalf("positions diverged: central %v,%v mirror %v,%v", cf.Lat, cf.Lon, mf.Lat, mf.Lon)
	}
	if cf.Status != mf.Status {
		t.Fatalf("status diverged: %s vs %s", cf.Status, mf.Status)
	}
	if cf.PositionUpdates != mf.PositionUpdates {
		t.Fatalf("weighted update counts diverged: %d vs %d", cf.PositionUpdates, mf.PositionUpdates)
	}
}

func TestCustomRuleInstallation(t *testing.T) {
	called := 0
	r := ruleFunc{name: "probe", fn: func(st *State, e *event.Event) []*event.Event {
		called++
		return nil
	}}
	en := New(Config{Rules: []Rule{r}})
	en.Process(event.NewPosition(1, 1, 0, 0, 0, 32))
	if called != 1 {
		t.Fatalf("custom rule called %d times, want 1", called)
	}
}

type ruleFunc struct {
	name string
	fn   func(*State, *event.Event) []*event.Event
}

func (r ruleFunc) Name() string                                   { return r.name }
func (r ruleFunc) Apply(st *State, e *event.Event) []*event.Event { return r.fn(st, e) }

func TestRuleNames(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range DefaultRules() {
		if r.Name() == "" {
			t.Fatal("rule with empty name")
		}
		if seen[r.Name()] {
			t.Fatalf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
}

func BenchmarkProcessPosition(b *testing.B) {
	en := New(Config{})
	e := event.NewPosition(1, 1, 1, 2, 3, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.Process(e)
	}
}

func BenchmarkSnapshot1000Flights(b *testing.B) {
	en := New(Config{})
	for f := 0; f < 1000; f++ {
		en.Process(event.NewPosition(event.FlightID(f), 1, 1, 2, 3, 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = en.State().Snapshot()
	}
}
