package cbcast

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

func ev(seq uint64) *event.Event {
	return &event.Event{Type: event.TypeFAAPosition, Seq: seq, Coalesced: 1}
}

func TestDeliverable(t *testing.T) {
	cases := []struct {
		msg   Message
		local vclock.VC
		want  bool
	}{
		// Next message from sender 0, no dependencies.
		{Message{Sender: 0, VT: vclock.VC{1, 0}}, vclock.VC{0, 0}, true},
		// Gap from sender 0.
		{Message{Sender: 0, VT: vclock.VC{2, 0}}, vclock.VC{0, 0}, false},
		// Dependency on sender 1 not yet delivered.
		{Message{Sender: 0, VT: vclock.VC{1, 1}}, vclock.VC{0, 0}, false},
		// Dependency satisfied.
		{Message{Sender: 0, VT: vclock.VC{1, 1}}, vclock.VC{0, 1}, true},
		// Duplicate (already delivered).
		{Message{Sender: 0, VT: vclock.VC{1, 0}}, vclock.VC{1, 0}, false},
	}
	for i, c := range cases {
		if got := Deliverable(c.msg, c.local); got != c.want {
			t.Errorf("case %d: Deliverable = %v, want %v", i, got, c.want)
		}
	}
}

func TestInOrderDelivery(t *testing.T) {
	var mu sync.Mutex
	got := map[int][]uint64{}
	g, err := NewGroup(3, func(member int, msg Message) {
		mu.Lock()
		got[member] = append(got[member], msg.Event.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	m0, _ := g.Member(0)
	for i := uint64(1); i <= 20; i++ {
		if err := m0.Broadcast(ev(i)); err != nil {
			t.Fatal(err)
		}
	}
	for member := 0; member < 3; member++ {
		seqs := got[member]
		if len(seqs) != 20 {
			t.Fatalf("member %d delivered %d, want 20", member, len(seqs))
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("member %d: delivery %d has seq %d", member, i, s)
			}
		}
	}
}

func TestCausalOrderAcrossSenders(t *testing.T) {
	// Member 1 broadcasts only after delivering member 0's message;
	// every member must deliver 0's before 1's even if the network
	// reorders them.
	var mu sync.Mutex
	order := map[int][]int{}
	g, _ := NewGroup(2, func(member int, msg Message) {
		mu.Lock()
		order[member] = append(order[member], msg.Sender)
		mu.Unlock()
	})
	defer g.Close()
	m0, _ := g.Member(0)
	m1, _ := g.Member(1)

	// Delay member 0's copy of m0's own broadcast... instead: deliver
	// m0's broadcast to member 1 first, then m1 broadcasts (causally
	// after), and we deliver m1's message to member 0 BEFORE m0's own
	// copy of its broadcast is... simpler: route m1's message to a
	// fresh member before its dependency.
	g.SetReorder(func(msg Message, deliver func(to int)) {
		if msg.Sender == 0 {
			deliver(1) // member 1 sees it (and will broadcast after)
			// member 0's own copy is delayed until after m1's message.
			delayed := msg
			g.SetReorder(func(msg2 Message, deliver2 func(to int)) {
				// m1's broadcast: deliver to member 0 FIRST (premature),
				// then member 1; then release the delayed message.
				deliver2(0)
				deliver2(1)
				deliver(0)
				_ = delayed
				g.SetReorder(nil)
			})
			return
		}
		deliver(0)
		deliver(1)
	})

	if err := m0.Broadcast(ev(1)); err != nil {
		t.Fatal(err)
	}
	if err := m1.Broadcast(ev(2)); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for member, senders := range order {
		if len(senders) != 2 {
			t.Fatalf("member %d delivered %d messages, want 2", member, len(senders))
		}
		if senders[0] != 0 || senders[1] != 1 {
			t.Fatalf("member %d delivered out of causal order: %v", member, senders)
		}
	}
}

func TestReorderedStreamStillCausal(t *testing.T) {
	// Randomly shuffle per-member delivery of a single sender's
	// stream; the pending buffer must restore FIFO order.
	var mu sync.Mutex
	got := map[int][]uint64{}
	g, _ := NewGroup(2, func(member int, msg Message) {
		mu.Lock()
		got[member] = append(got[member], msg.Event.Seq)
		mu.Unlock()
	})
	defer g.Close()

	rng := rand.New(rand.NewSource(3))
	var backlog []Message
	g.SetReorder(func(msg Message, deliver func(to int)) {
		deliver(0) // member 0 in order
		backlog = append(backlog, msg)
		// Flush member 1 in random order every few messages.
		if len(backlog) >= 5 {
			rng.Shuffle(len(backlog), func(i, j int) { backlog[i], backlog[j] = backlog[j], backlog[i] })
			for _, b := range backlog {
				m1, _ := g.Member(1)
				m1.receive(b)
			}
			backlog = nil
		}
	})
	m0, _ := g.Member(0)
	for i := uint64(1); i <= 25; i++ {
		m0.Broadcast(ev(i))
	}
	mu.Lock()
	defer mu.Unlock()
	seqs := got[1]
	if len(seqs) != 25 {
		t.Fatalf("member 1 delivered %d, want 25", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("member 1: delivery %d has seq %d: FIFO violated", i, s)
		}
	}
}

func TestConcurrentBroadcasters(t *testing.T) {
	var mu sync.Mutex
	counts := map[int]int{}
	perSenderOrder := map[int]map[int]uint64{} // member → sender → last seq component
	g, _ := NewGroup(4, func(member int, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		counts[member]++
		if perSenderOrder[member] == nil {
			perSenderOrder[member] = map[int]uint64{}
		}
		last := perSenderOrder[member][msg.Sender]
		seq := msg.VT.At(msg.Sender)
		if seq != last+1 {
			t.Errorf("member %d: sender %d jumped %d -> %d", member, msg.Sender, last, seq)
		}
		perSenderOrder[member][msg.Sender] = seq
	})
	defer g.Close()

	var wg sync.WaitGroup
	const per = 50
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			m, _ := g.Member(s)
			for i := 0; i < per; i++ {
				if err := m.Broadcast(ev(uint64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for member, n := range counts {
		if n != 4*per {
			t.Fatalf("member %d delivered %d, want %d", member, n, 4*per)
		}
	}
}

func TestDeliveryClockConvergence(t *testing.T) {
	g, _ := NewGroup(3, nil)
	defer g.Close()
	for s := 0; s < 3; s++ {
		m, _ := g.Member(s)
		for i := 0; i < 10; i++ {
			m.Broadcast(ev(uint64(i)))
		}
	}
	want := vclock.VC{10, 10, 10}
	for s := 0; s < 3; s++ {
		m, _ := g.Member(s)
		if got := m.Delivered(); got.Compare(want) != vclock.Equal {
			t.Fatalf("member %d delivered clock %v, want %v", s, got, want)
		}
		if m.Pending() != 0 {
			t.Fatalf("member %d has %d pending after quiescence", s, m.Pending())
		}
	}
	if g.Broadcasts() != 30 {
		t.Fatalf("Broadcasts = %d, want 30", g.Broadcasts())
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(0, nil); err == nil {
		t.Fatal("empty group must fail")
	}
	g, _ := NewGroup(2, nil)
	defer g.Close()
	if _, err := g.Member(5); err == nil {
		t.Fatal("out-of-range member must fail")
	}
	if _, err := g.Member(-1); err == nil {
		t.Fatal("negative member must fail")
	}
	if g.Size() != 2 {
		t.Fatalf("Size = %d", g.Size())
	}
}

func TestClosedGroupRejectsBroadcast(t *testing.T) {
	g, _ := NewGroup(2, nil)
	m, _ := g.Member(0)
	g.Close()
	if err := m.Broadcast(ev(1)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDeliverableProperty(t *testing.T) {
	// Property: a message deliverable at `local` is no longer
	// deliverable after delivery (duplicates rejected).
	f := func(sender8 uint8, deps []uint8) bool {
		n := len(deps)%4 + 2
		sender := int(sender8) % n
		local := vclock.New(n)
		for k := 0; k < n && len(deps) > 0; k++ {
			local[k] = uint64(deps[k%len(deps)] % 5)
		}
		vt := local.Clone()
		vt = vt.Tick(sender)
		msg := Message{Sender: sender, VT: vt}
		if !Deliverable(msg, local) {
			return false
		}
		after := local.Merge(vt)
		return !Deliverable(msg, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBroadcast4Members(b *testing.B) {
	g, _ := NewGroup(4, nil)
	defer g.Close()
	m, _ := g.Member(0)
	e := ev(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Broadcast(e)
	}
}
