// Package cbcast implements a classical causal broadcast (CBCAST)
// replication baseline in the style of Birman, Schiper and Stephenson
// ("Lightweight Causal and Atomic Group Multicast", TOCS 1991) — the
// related work the paper contrasts its approach against: CBCAST
// "strictly relies on message orderings, without incorporating the
// application-level information used for mirroring in our
// infrastructure."
//
// Every group member broadcasts every update stamped with its vector
// clock; receivers delay messages until causal predecessors have been
// delivered, then deliver in causal order. Nothing is filtered,
// coalesced, or overwritten — which is precisely the cost the paper's
// application-level mirroring avoids. The ablation benchmark
// BenchmarkAblationCBCASTBaseline compares the two.
package cbcast

import (
	"errors"
	"fmt"
	"sync"

	"adaptmirror/internal/event"
	"adaptmirror/internal/vclock"
)

// ErrClosed is returned after a member or group has shut down.
var ErrClosed = errors.New("cbcast: closed")

// Message is one causally stamped broadcast.
type Message struct {
	// Sender is the originating member's index.
	Sender int
	// VT is the sender's vector clock *after* stamping this message:
	// VT[Sender] is the message's sequence number and the remaining
	// components are the causal dependencies.
	VT vclock.VC
	// Event is the payload.
	Event *event.Event
}

// Deliverable reports whether m can be delivered at a member whose
// current delivery clock is local: the message must be the next from
// its sender (VT[s] == local[s]+1) and must not depend on anything the
// member has not delivered (VT[k] <= local[k] for k != s).
func Deliverable(m Message, local vclock.VC) bool {
	for k := 0; k < len(m.VT); k++ {
		if k == m.Sender {
			if m.VT.At(k) != local.At(k)+1 {
				return false
			}
			continue
		}
		if m.VT.At(k) > local.At(k) {
			return false
		}
	}
	return true
}

// Member is one replica in a causal broadcast group.
type Member struct {
	group *Group
	index int

	mu        sync.Mutex
	sendClock vclock.VC // stamps outgoing broadcasts
	delivered vclock.VC // delivery progress
	pending   []Message // causally premature messages
	closed    bool

	deliver func(Message)

	// stats
	deliveredN uint64
	delayedN   uint64
}

// Index returns the member's group index.
func (m *Member) Index() int { return m.index }

// Broadcast stamps e with the member's vector clock and sends it to
// every member (including itself, per CBCAST semantics).
func (m *Member) Broadcast(e *event.Event) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.sendClock = m.sendClock.Tick(m.index)
	msg := Message{Sender: m.index, VT: m.sendClock.Clone(), Event: e}
	m.mu.Unlock()
	return m.group.route(msg)
}

// receive ingests one message, delivering it and any unblocked
// pending messages in causal order.
func (m *Member) receive(msg Message) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.pending = append(m.pending, msg)
	var ready []Message
	for {
		advanced := false
		for i := 0; i < len(m.pending); i++ {
			if Deliverable(m.pending[i], m.delivered) {
				dm := m.pending[i]
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				m.delivered = m.delivered.Merge(dm.VT)
				// Received messages causally after our own sends also
				// advance our send clock's knowledge.
				m.sendClock = m.sendClock.Merge(dm.VT)
				m.deliveredN++
				ready = append(ready, dm)
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	m.delayedN += uint64(len(m.pending))
	handler := m.deliver
	m.mu.Unlock()
	if handler != nil {
		for _, dm := range ready {
			handler(dm)
		}
	}
}

// Pending returns the number of causally blocked messages.
func (m *Member) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Delivered returns the member's delivery clock.
func (m *Member) Delivered() vclock.VC {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered.Clone()
}

// Stats returns (messages delivered, cumulative pending observations).
func (m *Member) Stats() (delivered, delayed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deliveredN, m.delayedN
}

// Group is a static causal broadcast group.
type Group struct {
	mu      sync.Mutex
	members []*Member
	// reorder, when non-nil, intercepts routing for fault injection
	// in tests (e.g. delaying or reordering deliveries).
	reorder func(msg Message, deliver func(to int))
	closed  bool

	broadcasts uint64
}

// NewGroup creates a group with n members; deliver[i] (may be nil)
// receives member i's causally ordered deliveries.
func NewGroup(n int, deliver func(member int, msg Message)) (*Group, error) {
	if n <= 0 {
		return nil, errors.New("cbcast: group needs at least one member")
	}
	g := &Group{}
	for i := 0; i < n; i++ {
		i := i
		m := &Member{group: g, index: i}
		if deliver != nil {
			m.deliver = func(msg Message) { deliver(i, msg) }
		}
		g.members = append(g.members, m)
	}
	return g, nil
}

// Member returns member i.
func (g *Group) Member(i int) (*Member, error) {
	if i < 0 || i >= len(g.members) {
		return nil, fmt.Errorf("cbcast: no member %d in group of %d", i, len(g.members))
	}
	return g.members[i], nil
}

// Size returns the group size.
func (g *Group) Size() int { return len(g.members) }

// SetReorder installs a routing interceptor for fault injection: it
// receives each broadcast and a function delivering it to one member.
// nil restores direct routing.
func (g *Group) SetReorder(f func(msg Message, deliver func(to int))) {
	g.mu.Lock()
	g.reorder = f
	g.mu.Unlock()
}

// route fans a broadcast out to every member.
func (g *Group) route(msg Message) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	g.broadcasts++
	reorder := g.reorder
	members := g.members
	g.mu.Unlock()

	if reorder != nil {
		reorder(msg, func(to int) {
			if to >= 0 && to < len(members) {
				members[to].receive(msg)
			}
		})
		return nil
	}
	for _, m := range members {
		m.receive(msg)
	}
	return nil
}

// Broadcasts returns the number of broadcasts routed.
func (g *Group) Broadcasts() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.broadcasts
}

// Close shuts the group down; subsequent broadcasts fail.
func (g *Group) Close() {
	g.mu.Lock()
	g.closed = true
	members := g.members
	g.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		m.closed = true
		m.mu.Unlock()
	}
}
