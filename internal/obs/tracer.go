package obs

import (
	"time"

	"adaptmirror/internal/metrics"
)

// Stage identifies one segment of an event's path through the
// pipeline. The first three stages telescope: for an event processed
// by the central EDE, ready_wait + forward + apply equals its
// end-to-end update delay (ingress → EDE emission), so the Figure 8/9
// metric decomposes into where the time is actually spent.
type Stage uint8

// Lifecycle stages.
const (
	// StageReadyWait is ingress (receiving-task timestamping) until the
	// sending task removes the event from the ready queue.
	StageReadyWait Stage = iota
	// StageForward is ready-queue removal until the event is handed to
	// the local main unit (includes the filter/overwrite decision and
	// main-queue back-pressure).
	StageForward
	// StageApply is main-unit queueing plus EDE rule processing, ending
	// at the emission instant on the node's virtual timeline.
	StageApply
	// StageFanoutEnqueue is ready-queue removal until the filtered
	// batch has been handed to every mirror link's outbox.
	StageFanoutEnqueue
	// StageLinkSend is the wall-clock latency of one batch submission
	// on a mirror link (the fan-out pipeline's stall time).
	StageLinkSend
	// StageMirrorApply is central ingress until a mirror site's EDE
	// emits the event — the replica-freshness lag.
	StageMirrorApply
	// StageChkptCommit is one checkpoint round's CHKPT→COMMIT latency.
	StageChkptCommit
	numStages
)

// String names the stage (used as the "stage" label value).
func (s Stage) String() string {
	switch s {
	case StageReadyWait:
		return "ready_wait"
	case StageForward:
		return "forward"
	case StageApply:
		return "apply"
	case StageFanoutEnqueue:
		return "fanout_enqueue"
	case StageLinkSend:
		return "link_send"
	case StageMirrorApply:
		return "mirror_apply"
	case StageChkptCommit:
		return "chkpt_commit"
	default:
		return "unknown"
	}
}

// Tracer aggregates per-stage latency histograms for the event
// lifecycle. All methods are safe for concurrent use and no-ops on a
// nil receiver, so pipeline code can call through unconditionally.
type Tracer struct {
	hists [numStages]*metrics.Histogram
}

// TracerFamily is the metric family name tracer stages register under.
const TracerFamily = "pipeline_stage_seconds"

// NewTracer returns a tracer whose stage histograms are registered on
// r as pipeline_stage_seconds{stage="..."} (r may be nil for an
// unregistered tracer).
func NewTracer(r *Registry) *Tracer {
	r.Describe(TracerFamily, "Event-lifecycle latency by pipeline stage.")
	t := &Tracer{}
	for s := Stage(0); s < numStages; s++ {
		t.hists[s] = r.Histogram(TracerFamily, L("stage", s.String()))
	}
	return t
}

// Observe records one latency sample for a stage. Negative durations
// are clamped to zero.
func (t *Tracer) Observe(s Stage, d time.Duration) {
	if t == nil || s >= numStages {
		return
	}
	if d < 0 {
		d = 0
	}
	t.hists[s].Record(d)
}

// ObserveCentralPath decomposes one centrally processed event's update
// delay into ready_wait/forward/apply from its stamps: ingress and
// readyAt/forwardAt (UnixNano, 0 when the event skipped that stage)
// and the EDE emission instant. The stage boundaries are clamped into
// the delay interval [ingress, done], so the three stages telescope
// exactly to the reported update delay (clamped at zero, like
// DelayHist). The clamp matters because the stamps are wall-clock
// instants while done sits on the node's virtual timeline, which may
// run behind wall clock by up to the cost model's catch-up window: a
// stage boundary stamped after the virtual emission instant
// contributes all of its remaining time to the earlier stages and
// none to the later ones, keeping the decomposition an accounting of
// the delay metric rather than of host scheduling noise.
func (t *Tracer) ObserveCentralPath(ingress, readyAt, forwardAt int64, done time.Time) {
	if t == nil || ingress == 0 {
		return
	}
	t0 := ingress
	t3 := done.UnixNano()
	if t3 < t0 {
		t3 = t0
	}
	t1 := t0
	if readyAt > t1 {
		t1 = readyAt
	}
	if t1 > t3 {
		t1 = t3
	}
	t2 := t1
	if forwardAt > t2 {
		t2 = forwardAt
	}
	if t2 > t3 {
		t2 = t3
	}
	t.hists[StageReadyWait].Record(time.Duration(t1 - t0))
	t.hists[StageForward].Record(time.Duration(t2 - t1))
	t.hists[StageApply].Record(time.Duration(t3 - t2))
}

// StageHist exposes one stage's histogram (nil on a nil tracer).
func (t *Tracer) StageHist(s Stage) *metrics.Histogram {
	if t == nil || s >= numStages {
		return nil
	}
	return t.hists[s]
}

// StageStat is one row of a tracer breakdown.
type StageStat struct {
	Stage string
	Count uint64
	Mean  time.Duration
	P95   time.Duration
	Max   time.Duration
}

// Breakdown returns per-stage statistics for every stage that recorded
// at least one sample, in pipeline order.
func (t *Tracer) Breakdown() []StageStat {
	if t == nil {
		return nil
	}
	var out []StageStat
	for s := Stage(0); s < numStages; s++ {
		h := t.hists[s]
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, StageStat{
			Stage: s.String(),
			Count: n,
			Mean:  h.Mean(),
			P95:   h.Percentile(95),
			Max:   h.Max(),
		})
	}
	return out
}

// CentralStageSum returns the sum of the central-path stage means
// (ready_wait + forward + apply). For a run where every processed
// event was traced, it equals the mean of the per-event stage sums and
// should match the mean update delay.
func (t *Tracer) CentralStageSum() time.Duration {
	if t == nil {
		return 0
	}
	return t.hists[StageReadyWait].Mean() +
		t.hists[StageForward].Mean() +
		t.hists[StageApply].Mean()
}
