package obs

import (
	"strings"
	"testing"
)

func lintErr(t *testing.T, exposition string) error {
	t.Helper()
	return LintPrometheus(strings.NewReader(exposition))
}

func TestLintAcceptsValid(t *testing.T) {
	valid := `# HELP http_requests_total Total requests.
# TYPE http_requests_total counter
http_requests_total{method="get",code="200"} 1027
http_requests_total{method="post",code="200"} 3

# TYPE queue_depth gauge
queue_depth 7

# TYPE rpc_duration_seconds summary
rpc_duration_seconds{quantile="0.5"} 0.05
rpc_duration_seconds{quantile="0.99"} 0.1
rpc_duration_seconds_sum 17.5
rpc_duration_seconds_count 2693
untyped_metric 3.14 1395066363000
escaped{path="C:\\DIR\\",msg="say \"hi\"\n"} 1
`
	if err := lintErr(t, valid); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "empty exposition"},
		{"no trailing newline", "a 1", "end with a newline"},
		{"bad metric name", "9bad 1\n", "invalid metric name"},
		{"bad label name", `m{9x="1"} 1` + "\n", "invalid label name"},
		{"reserved label", `m{__name="1"} 1` + "\n", "invalid label name"},
		{"unquoted label", "m{x=1} 1\n", "not quoted"},
		{"bad escape", `m{x="a\t"} 1` + "\n", `invalid escape`},
		{"unterminated value", `m{x="a} 1` + "\n", "unterminated label value"},
		{"missing value", "m{}\n", "must be 'value [timestamp]'"},
		{"bad value", "m notanumber\n", "invalid sample value"},
		{"bad timestamp", "m 1 12.5\n", "invalid timestamp"},
		{"bad type", "# TYPE m frobnitz\nm 1\n", `invalid type "frobnitz"`},
		{"duplicate TYPE", "# TYPE m counter\n# TYPE m counter\nm 1\n", "second TYPE line"},
		{"TYPE after samples", "m 1\n# TYPE m counter\n", "after its samples"},
		{"duplicate series", "m 1\nm 2\n", "duplicate series"},
		{
			"interleaved families",
			"# TYPE a counter\na 1\n# TYPE b counter\nb 1\na{x=\"1\"} 2\n",
			"not contiguous",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := lintErr(t, tc.in)
			if err == nil {
				t.Fatalf("lint accepted invalid exposition:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestLintSummarySuffixesAreSameFamily(t *testing.T) {
	// _sum/_count of a summary must not be flagged as interleaving or as
	// separate families.
	in := `# TYPE s summary
s{quantile="0.5"} 1
s_sum 2
s_count 3
# TYPE other counter
other 1
`
	if err := lintErr(t, in); err != nil {
		t.Fatalf("summary suffix handling broken: %v", err)
	}
}

func TestLintReportsAllViolations(t *testing.T) {
	in := "9bad 1\nm notanumber\n"
	err := lintErr(t, in)
	if err == nil {
		t.Fatal("expected violations")
	}
	if !strings.Contains(err.Error(), "2 violation(s)") {
		t.Fatalf("expected both violations reported, got: %v", err)
	}
}
