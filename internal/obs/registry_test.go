package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"adaptmirror/internal/metrics"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("link_sent_total", L("mirror", "0"))
	c2 := r.Counter("link_sent_total", L("mirror", "0"))
	if c1 != c2 {
		t.Fatal("same (name, labels) should return the same counter")
	}
	c3 := r.Counter("link_sent_total", L("mirror", "1"))
	if c1 == c3 {
		t.Fatal("distinct label sets should return distinct counters")
	}
	if r.Families() != 1 {
		t.Fatalf("Families() = %d, want 1", r.Families())
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("g", L("x", "1"), L("y", "2"))
	b := r.Gauge("g", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order should not affect series identity")
	}
}

func TestRegistryKindConflict(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("m")
	c.Inc()
	g := r.Gauge("m") // conflicting kind: must return unregistered instrument
	g.Set(42)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "42") {
		t.Fatalf("conflicting-kind gauge leaked into output:\n%s", b.String())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Record(time.Millisecond)
	r.CounterFunc("cf", func() float64 { return 1 })
	r.GaugeFunc("gf", func() float64 { return 1 })
	r.RegisterCounter("rc", &metrics.Counter{})
	r.Describe("c", "help")
	if r.Families() != 0 {
		t.Fatal("nil registry should report zero families")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Describe("link_sent_total", "Events sent per mirror link.")
	r.Counter("link_sent_total", L("mirror", "0")).Add(5)
	r.Counter("link_sent_total", L("mirror", "1")).Add(7)
	r.Gauge("queue_depth", L("site", "central")).Set(3)
	r.Histogram("update_delay_seconds").Record(10 * time.Millisecond)
	r.Histogram("update_delay_seconds").Record(20 * time.Millisecond)
	r.GaugeFunc("uptime", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP link_sent_total Events sent per mirror link.",
		"# TYPE link_sent_total counter",
		`link_sent_total{mirror="0"} 5`,
		`link_sent_total{mirror="1"} 7`,
		"# TYPE queue_depth gauge",
		`queue_depth{site="central"} 3`,
		"# TYPE update_delay_seconds summary",
		`update_delay_seconds{quantile="0.5"}`,
		`update_delay_seconds{quantile="0.99"}`,
		"update_delay_seconds_sum 0.03",
		"update_delay_seconds_count 2",
		"uptime 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("output must end with a newline")
	}
	// The exposition we write must pass our own lint.
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Describe("weird", "help with \\ and\nnewline")
	r.Counter("weird", L("path", `a\b"c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `path="a\\b\"c\n"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}
}

func TestRegisterExisting(t *testing.T) {
	r := NewRegistry()
	var c metrics.Counter
	c.Add(9)
	r.RegisterCounter("pre_existing_total", &c, L("site", "m1"))
	var g metrics.Gauge
	g.Set(-4)
	r.RegisterGauge("pre_gauge", &g)
	h := metrics.NewHistogram(8)
	h.Record(time.Second)
	r.RegisterHistogram("pre_hist_seconds", h)
	var d metrics.DurationCounter
	d.Add(2 * time.Second)
	r.RegisterDurationCounter("stall_seconds_total", &d, L("mirror", "0"))

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pre_existing_total{site="m1"} 9`,
		"pre_gauge -4",
		"pre_hist_seconds_count 1",
		`stall_seconds_total{mirror="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c", L("w", "x")).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Record(time.Microsecond)
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", L("w", "x")).Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
}
