package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-format (version 0.0.4)
// exposition: metric and label naming, HELP/TYPE placement, sample
// syntax (including label-value escaping), family grouping, and
// duplicate-series detection. It returns nil for a conforming
// exposition, or an error listing every violation found — the
// `make metrics-lint` gate scrapes a live /metrics endpoint through
// this.
func LintPrometheus(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("obs: lint: reading exposition: %w", err)
	}
	var errs []string
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	if len(data) == 0 {
		return fmt.Errorf("obs: lint: empty exposition")
	}
	if data[len(data)-1] != '\n' {
		errs = append(errs, "exposition must end with a newline")
	}

	types := make(map[string]string) // family → TYPE
	closed := make(map[string]bool)  // families whose sample block ended
	series := make(map[string]bool)  // name+labels seen
	sampled := make(map[string]bool) // families with at least one sample
	current := ""                    // family currently emitting samples

	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				fail(ln, "invalid metric name %q in %s line", name, fields[1])
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					fail(ln, "TYPE line for %s missing type", name)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail(ln, "invalid type %q for %s", fields[3], name)
				}
				if _, dup := types[name]; dup {
					fail(ln, "second TYPE line for %s", name)
				}
				if sampled[name] {
					fail(ln, "TYPE line for %s after its samples", name)
				}
				types[name] = fields[3]
			}
			continue
		}

		name, labels, value, ok := parseSample(line, ln, fail)
		if !ok {
			continue
		}
		if !validMetricName(name) {
			fail(ln, "invalid metric name %q", name)
			continue
		}
		fam := familyOf(name, types)
		sampled[fam] = true
		if fam != current {
			if closed[fam] {
				fail(ln, "samples of %s are not contiguous", fam)
			}
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		key := name + "{" + strings.Join(labels, ",") + "}"
		if series[key] {
			fail(ln, "duplicate series %s", key)
		}
		series[key] = true
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			switch value {
			case "+Inf", "-Inf", "NaN", "Nan":
			default:
				fail(ln, "invalid sample value %q for %s", value, name)
			}
		}
	}

	if len(errs) > 0 {
		return fmt.Errorf("obs: lint: %d violation(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
	}
	return nil
}

// familyOf maps a sample name to its metric family: summary and
// histogram samples use the base name plus _sum/_count/_bucket.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := types[base]; ok && (t == "summary" || t == "histogram") {
			return base
		}
	}
	return name
}

// validMetricName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabelName checks [a-zA-Z_][a-zA-Z0-9_]* and rejects the
// reserved __ prefix.
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// parseSample parses `name[{labels}] value [timestamp]`, reporting
// violations through fail. labels come back as rendered k="v" pairs
// for series identity.
func parseSample(line string, ln int, fail func(int, string, ...any)) (name string, labels []string, value string, ok bool) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		fail(ln, "sample %q has no value", line)
		return "", nil, "", false
	}
	name = rest[:end]
	rest = rest[end:]

	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				fail(ln, "unterminated label set in %q", line)
				return "", nil, "", false
			}
			lname := rest[:eq]
			if !validLabelName(lname) {
				fail(ln, "invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				fail(ln, "label %s value is not quoted", lname)
				return "", nil, "", false
			}
			lval, remain, verr := scanLabelValue(rest[1:])
			if verr != "" {
				fail(ln, "label %s: %s", lname, verr)
				return "", nil, "", false
			}
			labels = append(labels, lname+`="`+lval+`"`)
			rest = remain
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		fail(ln, "sample %q must be 'value [timestamp]' after the name, got %q", line, rest)
		return "", nil, "", false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			fail(ln, "invalid timestamp %q", fields[1])
		}
	}
	return name, labels, fields[0], true
}

// scanLabelValue consumes a quoted label value body (after the opening
// quote), validating the \\, \", \n escapes. It returns the raw
// (still-escaped) value and the remainder after the closing quote.
func scanLabelValue(s string) (val, rest, errMsg string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", "dangling escape"
			}
			switch s[i+1] {
			case '\\', '"', 'n':
				i++
			default:
				return "", "", fmt.Sprintf("invalid escape \\%c", s[i+1])
			}
		case '"':
			return s[:i], s[i+1:], ""
		}
	}
	return "", "", "unterminated label value"
}
