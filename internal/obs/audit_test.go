package obs

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestAuditRingWraparound(t *testing.T) {
	l := NewAuditLog(4)
	for i := 0; i < 10; i++ {
		l.Append(AuditEntry{Action: "engage", Value: i})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	es := l.Entries()
	for i, e := range es {
		if want := 6 + i; e.Value != want {
			t.Errorf("entry %d Value = %d, want %d", i, e.Value, want)
		}
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("entry %d Seq = %d, want %d", i, e.Seq, want)
		}
		if e.At.IsZero() {
			t.Errorf("entry %d missing timestamp", i)
		}
	}
}

func TestAuditNilSafe(t *testing.T) {
	var l *AuditLog
	l.Append(AuditEntry{})
	if l.Entries() != nil || l.Len() != 0 || l.Total() != 0 {
		t.Fatal("nil audit log should be empty")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditDurableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := NewAuditLog(2) // ring smaller than the entry count
	if err := l.OpenDurable(path); err != nil {
		t.Fatal(err)
	}
	entries := []AuditEntry{
		{Action: "engage", RegimeID: 1, Regime: "coalesce-10", Var: "backup-queue", Value: 600, Primary: 512, Secondary: 128, Ready: 3, Backup: 600, Pending: 2},
		{Action: "revert", RegimeID: 0, Regime: "baseline", Var: "backup-queue", Value: 100, Primary: 512, Secondary: 128, Ready: 0, Backup: 100, Pending: 0},
		{Action: "engage", RegimeID: 2, Regime: "overwrite-20", Var: "pending-requests", Value: 900, Primary: 800, Secondary: 100, Ready: 1, Backup: 50, Pending: 900},
	}
	for _, e := range entries {
		l.Append(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The durable file keeps everything, including what the ring evicted.
	got, err := ReadAuditLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries, want %d", len(got), len(entries))
	}
	for i, e := range got {
		w := entries[i]
		if e.Action != w.Action || e.RegimeID != w.RegimeID || e.Regime != w.Regime ||
			e.Var != w.Var || e.Value != w.Value || e.Primary != w.Primary ||
			e.Secondary != w.Secondary || e.Ready != w.Ready || e.Backup != w.Backup ||
			e.Pending != w.Pending {
			t.Errorf("entry %d = %+v, want fields of %+v", i, e, w)
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("entry %d Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	if l.Len() != 2 {
		t.Fatalf("ring Len = %d, want 2", l.Len())
	}
}

func TestAuditConcurrent(t *testing.T) {
	l := NewAuditLog(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(AuditEntry{Action: "engage"})
				l.Entries()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("Total = %d, want 800", l.Total())
	}
}
