package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Observe(StageApply, time.Millisecond)
	tr.ObserveCentralPath(1, 2, 3, time.Now())
	if tr.Breakdown() != nil {
		t.Fatal("nil tracer Breakdown should be nil")
	}
	if tr.CentralStageSum() != 0 {
		t.Fatal("nil tracer CentralStageSum should be 0")
	}
	if tr.StageHist(StageApply) != nil {
		t.Fatal("nil tracer StageHist should be nil")
	}
}

func TestTracerTelescoping(t *testing.T) {
	tr := NewTracer(nil)
	base := time.Now()
	t0 := base.UnixNano()
	t1 := base.Add(2 * time.Millisecond).UnixNano()
	t2 := base.Add(5 * time.Millisecond).UnixNano()
	done := base.Add(11 * time.Millisecond)
	tr.ObserveCentralPath(t0, t1, t2, done)

	if got := tr.StageHist(StageReadyWait).Max(); got != 2*time.Millisecond {
		t.Errorf("ready_wait = %v, want 2ms", got)
	}
	if got := tr.StageHist(StageForward).Max(); got != 3*time.Millisecond {
		t.Errorf("forward = %v, want 3ms", got)
	}
	if got := tr.StageHist(StageApply).Max(); got != 6*time.Millisecond {
		t.Errorf("apply = %v, want 6ms", got)
	}
	if got, want := tr.CentralStageSum(), 11*time.Millisecond; got != want {
		t.Errorf("stage sum = %v, want %v (end-to-end delay)", got, want)
	}
}

func TestTracerClampsNonMonotone(t *testing.T) {
	tr := NewTracer(nil)
	base := time.Now()
	// readyAt/forwardAt zero (event skipped stamping) and done before
	// ingress (virtual-time skew): everything must clamp, never go
	// negative, and still telescope.
	tr.ObserveCentralPath(base.UnixNano(), 0, 0, base.Add(-time.Millisecond))
	for s := StageReadyWait; s <= StageApply; s++ {
		if got := tr.StageHist(s).Min(); got < 0 {
			t.Errorf("stage %s recorded negative duration %v", s, got)
		}
		if got := tr.StageHist(s).Count(); got != 1 {
			t.Errorf("stage %s count = %d, want 1", s, got)
		}
	}
	if tr.CentralStageSum() != 0 {
		t.Errorf("fully clamped path should sum to 0, got %v", tr.CentralStageSum())
	}
}

func TestTracerIgnoresUnstampedEvents(t *testing.T) {
	tr := NewTracer(nil)
	tr.ObserveCentralPath(0, 1, 2, time.Now())
	if got := tr.StageHist(StageApply).Count(); got != 0 {
		t.Fatalf("unstamped event recorded %d samples, want 0", got)
	}
}

func TestTracerRegistersStages(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	tr.Observe(StageLinkSend, 3*time.Millisecond)
	tr.Observe(StageChkptCommit, time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pipeline_stage_seconds{stage="link_send",quantile="0.5"}`,
		`pipeline_stage_seconds_count{stage="chkpt_commit"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}
}

func TestTracerBreakdownOrder(t *testing.T) {
	tr := NewTracer(nil)
	tr.Observe(StageChkptCommit, time.Millisecond)
	tr.Observe(StageReadyWait, time.Millisecond)
	tr.Observe(StageLinkSend, -time.Millisecond) // clamped to 0
	bd := tr.Breakdown()
	if len(bd) != 3 {
		t.Fatalf("breakdown rows = %d, want 3", len(bd))
	}
	want := []string{"ready_wait", "link_send", "chkpt_commit"}
	for i, row := range bd {
		if row.Stage != want[i] {
			t.Errorf("row %d stage = %s, want %s", i, row.Stage, want[i])
		}
	}
	if bd[1].Max != 0 {
		t.Errorf("negative observation should clamp to 0, got %v", bd[1].Max)
	}
}
