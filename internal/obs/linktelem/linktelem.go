// Package linktelem derives per-link wire telemetry at checkpoint-round
// granularity. The fan-out senders expose cumulative counters (payload
// bytes shipped, events sent, stall time) and windowed outbox
// high-water marks; the central site feeds them into a Sampler once per
// checkpoint round, and the Sampler turns the deltas into EWMA
// per-round rates plus an estimated link bandwidth. The smoothed values
// back the link_wire_* gauge families and the VarWireBytes /
// VarOutboxDepth monitored variables that let the adaptation controller
// see bandwidth pressure (paper Section 3.2.2 generalized to network
// telemetry, cf. RDMSim).
//
// The package deliberately does not import internal/core: core's
// fan-out is a producer of Samples, so the dependency points the other
// way.
package linktelem

import (
	"strconv"
	"sync"
	"time"

	"adaptmirror/internal/obs"
)

// DefaultAlpha is the EWMA smoothing factor applied to per-round
// deltas. 0.5 converges within a handful of rounds while still riding
// out single-round bursts (a checkpoint round is the natural control
// interval, so heavier smoothing would delay engage decisions).
const DefaultAlpha = 0.5

// Sample is one cumulative reading from a link at a telemetry tick.
// Bytes, Events and Stall are monotonically increasing counters since
// link creation; Depth is the instantaneous outbox depth and MaxDepth
// the high-water mark accumulated since the previous tick (the caller
// resets the windowed mark when it reads it).
type Sample struct {
	Bytes    uint64
	Events   uint64
	Depth    int
	MaxDepth int
	Stall    time.Duration
}

// Link is the smoothed per-link view the Sampler maintains.
type Link struct {
	// BytesPerRound and EventsPerRound are EWMAs of the per-round
	// deltas of the cumulative counters.
	BytesPerRound  float64
	EventsPerRound float64
	// MaxDepth is the outbox high-water mark observed in the last
	// telemetry window; Depth is the instantaneous depth at the last
	// tick.
	Depth    int
	MaxDepth int
	// StallPerRound is the EWMA of per-round stall time.
	StallPerRound time.Duration
	// BandwidthBps estimates the link's achieved payload bandwidth:
	// EWMA of (delta bytes / elapsed wall time) across ticks.
	BandwidthBps float64
	// Bytes and Events mirror the latest cumulative counters.
	Bytes  uint64
	Events uint64
	Stall  time.Duration
}

// Sampler accumulates per-link telemetry across ticks. All methods are
// safe for concurrent use: the central checkpoint loop ticks it while
// metric scrapes and status snapshots read it.
type Sampler struct {
	mu       sync.Mutex
	alpha    float64
	links    []Link
	prev     []Sample
	rounds   uint64
	lastTick time.Time
}

// New returns a Sampler tracking n links with DefaultAlpha smoothing.
func New(n int) *Sampler {
	return &Sampler{alpha: DefaultAlpha, links: make([]Link, n), prev: make([]Sample, n)}
}

// SetAlpha overrides the EWMA smoothing factor (0 < alpha <= 1).
func (s *Sampler) SetAlpha(a float64) {
	if a <= 0 || a > 1 {
		return
	}
	s.mu.Lock()
	s.alpha = a
	s.mu.Unlock()
}

func ewma(old, sample, alpha float64, first bool) float64 {
	if first {
		return sample
	}
	return old + alpha*(sample-old)
}

// Tick ingests one cumulative Sample per link, taken at instant now —
// once per checkpoint round at the central site. The first tick seeds
// the EWMAs with the raw first-window deltas.
func (s *Sampler) Tick(now time.Time, samples []Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	first := s.rounds == 0
	elapsed := 0.0
	if !s.lastTick.IsZero() {
		// A primed sampler has a baseline instant but no rounds yet:
		// its seeding tick still measures a real wall-clock window.
		elapsed = now.Sub(s.lastTick).Seconds()
	}
	for i := range samples {
		if i >= len(s.links) {
			break
		}
		cur, prev := samples[i], s.prev[i]
		l := &s.links[i]
		dBytes := float64(cur.Bytes - prev.Bytes)
		dEvents := float64(cur.Events - prev.Events)
		dStall := float64(cur.Stall - prev.Stall)
		l.BytesPerRound = ewma(l.BytesPerRound, dBytes, s.alpha, first)
		l.EventsPerRound = ewma(l.EventsPerRound, dEvents, s.alpha, first)
		l.StallPerRound = time.Duration(ewma(float64(l.StallPerRound), dStall, s.alpha, first))
		if elapsed > 0 {
			l.BandwidthBps = ewma(l.BandwidthBps, dBytes/elapsed, s.alpha, l.BandwidthBps == 0)
		}
		l.Depth = cur.Depth
		l.MaxDepth = cur.MaxDepth
		l.Bytes = cur.Bytes
		l.Events = cur.Events
		l.Stall = cur.Stall
		s.prev[i] = cur
	}
	s.rounds++
	s.lastTick = now
}

// Prime installs baseline cumulative readings without consuming a
// telemetry window. A promoted central inherits the per-link counters
// of the old one (the metrics registry hands the same cumulative
// series to whoever re-registers them), so a fresh Sampler's first
// Tick would otherwise read the entire historic total as one round's
// delta and poison the EWMAs — and, through VarWireBytes, the
// adaptation controller. After Prime the next Tick still seeds the
// EWMAs (rounds stays 0), but from the true first post-promotion
// window.
func (s *Sampler) Prime(now time.Time, samples []Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range samples {
		if i >= len(s.prev) {
			break
		}
		s.prev[i] = samples[i]
		s.links[i].Bytes = samples[i].Bytes
		s.links[i].Events = samples[i].Events
		s.links[i].Stall = samples[i].Stall
		s.links[i].Depth = samples[i].Depth
	}
	s.lastTick = now
}

// Links returns a snapshot of the per-link smoothed telemetry.
func (s *Sampler) Links() []Link {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Link, len(s.links))
	copy(out, s.links)
	return out
}

// Rounds returns the number of ticks ingested.
func (s *Sampler) Rounds() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// MaxBytesPerRound returns the busiest link's EWMA bytes/round,
// rounded down — the value of the VarWireBytes monitored variable.
func (s *Sampler) MaxBytesPerRound() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max float64
	for i := range s.links {
		if s.links[i].BytesPerRound > max {
			max = s.links[i].BytesPerRound
		}
	}
	return int(max)
}

// MaxOutboxDepth returns the deepest windowed outbox high-water mark
// across links — the value of the VarOutboxDepth monitored variable.
func (s *Sampler) MaxOutboxDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int
	for i := range s.links {
		if s.links[i].MaxDepth > max {
			max = s.links[i].MaxDepth
		}
	}
	return max
}

// Register exports the smoothed per-link telemetry through r (nil-safe
// like the registry itself), one series per link labelled by mirror
// index.
func (s *Sampler) Register(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Describe("link_wire_bytes_per_round", "EWMA of wire payload bytes shipped per checkpoint round, per mirror link.")
	r.Describe("link_wire_events_per_round", "EWMA of events shipped per checkpoint round, per mirror link.")
	r.Describe("link_stall_seconds_per_round", "EWMA of sender stall time per checkpoint round, per mirror link.")
	r.Describe("link_est_bandwidth_bytes_per_second", "Estimated achieved payload bandwidth per mirror link (EWMA of bytes/wall-second between telemetry ticks).")
	for i := range s.links {
		idx := i
		l := obs.L("mirror", strconv.Itoa(i))
		r.GaugeFunc("link_wire_bytes_per_round", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.links[idx].BytesPerRound
		}, l)
		r.GaugeFunc("link_wire_events_per_round", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.links[idx].EventsPerRound
		}, l)
		r.GaugeFunc("link_stall_seconds_per_round", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.links[idx].StallPerRound.Seconds()
		}, l)
		r.GaugeFunc("link_est_bandwidth_bytes_per_second", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.links[idx].BandwidthBps
		}, l)
	}
}
