package linktelem

import (
	"strings"
	"testing"
	"time"

	"adaptmirror/internal/obs"
)

func TestTickEWMASeedsAndSmooths(t *testing.T) {
	s := New(1)
	t0 := time.Unix(1000, 0)

	// First tick seeds the EWMAs with the raw first-window deltas.
	s.Tick(t0, []Sample{{Bytes: 1000, Events: 10, Stall: time.Millisecond}})
	l := s.Links()[0]
	if l.BytesPerRound != 1000 || l.EventsPerRound != 10 {
		t.Fatalf("first tick = %+v, want raw seed 1000/10", l)
	}
	if l.StallPerRound != time.Millisecond {
		t.Fatalf("StallPerRound = %v, want 1ms", l.StallPerRound)
	}

	// Second tick: delta 2000 bytes, EWMA(0.5) = 1000 + 0.5*(2000-1000).
	s.Tick(t0.Add(time.Second), []Sample{{Bytes: 3000, Events: 30, Stall: time.Millisecond}})
	l = s.Links()[0]
	if l.BytesPerRound != 1500 {
		t.Fatalf("BytesPerRound = %v, want 1500", l.BytesPerRound)
	}
	if l.EventsPerRound != 15 {
		t.Fatalf("EventsPerRound = %v, want 15", l.EventsPerRound)
	}
	if l.StallPerRound != time.Millisecond/2 {
		t.Fatalf("StallPerRound = %v, want 0.5ms", l.StallPerRound)
	}
	// Bandwidth seeds on the first elapsed window: 2000 B over 1 s.
	if l.BandwidthBps != 2000 {
		t.Fatalf("BandwidthBps = %v, want 2000", l.BandwidthBps)
	}
	if l.Bytes != 3000 || l.Events != 30 {
		t.Fatalf("cumulative mirror = %d/%d, want 3000/30", l.Bytes, l.Events)
	}
	if s.Rounds() != 2 {
		t.Fatalf("Rounds = %d, want 2", s.Rounds())
	}
}

func TestMonitoredVariableViews(t *testing.T) {
	s := New(2)
	now := time.Unix(1000, 0)
	s.Tick(now, []Sample{
		{Bytes: 500, MaxDepth: 3, Depth: 1},
		{Bytes: 2500, MaxDepth: 9, Depth: 2},
	})
	if got := s.MaxBytesPerRound(); got != 2500 {
		t.Fatalf("MaxBytesPerRound = %d, want 2500 (busiest link)", got)
	}
	if got := s.MaxOutboxDepth(); got != 9 {
		t.Fatalf("MaxOutboxDepth = %d, want 9 (deepest window)", got)
	}
	// The windowed high-water mark follows each tick's Sample: a calmer
	// next window lowers it (no sticky all-time max).
	s.Tick(now.Add(time.Second), []Sample{
		{Bytes: 600, MaxDepth: 1},
		{Bytes: 2600, MaxDepth: 2},
	})
	if got := s.MaxOutboxDepth(); got != 2 {
		t.Fatalf("MaxOutboxDepth after calm window = %d, want 2", got)
	}
}

func TestSetAlphaBoundsAndExtraSamples(t *testing.T) {
	s := New(1)
	s.SetAlpha(0) // ignored
	s.SetAlpha(2) // ignored
	s.SetAlpha(1) // no smoothing: EWMA tracks the latest delta exactly
	now := time.Unix(1000, 0)
	// Samples beyond the tracked link count are ignored, not a panic.
	s.Tick(now, []Sample{{Bytes: 100}, {Bytes: 999}})
	s.Tick(now.Add(time.Second), []Sample{{Bytes: 300}})
	if got := s.Links()[0].BytesPerRound; got != 200 {
		t.Fatalf("alpha=1 BytesPerRound = %v, want latest delta 200", got)
	}
}

func TestRegisterExportsPerLinkSeries(t *testing.T) {
	r := obs.NewRegistry()
	s := New(2)
	s.Tick(time.Unix(1000, 0), []Sample{{Bytes: 100, Events: 2}, {Bytes: 700, Events: 9}})
	s.Register(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`link_wire_bytes_per_round{mirror="0"} 100`,
		`link_wire_bytes_per_round{mirror="1"} 700`,
		`link_wire_events_per_round{mirror="1"} 9`,
		`link_est_bandwidth_bytes_per_second{mirror="0"}`,
		`link_stall_seconds_per_round{mirror="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Register on a nil registry must be a no-op, not a panic.
	s.Register(nil)
}

// TestPrimeBaselinesInheritedCounters covers the promotion path: a
// promoted central re-registers the old central's cumulative per-link
// series, so its fresh Sampler must be primed with the inherited
// totals or the first tick would read the whole history as one round's
// delta and poison the EWMAs the adaptation controller feeds on.
func TestPrimeBaselinesInheritedCounters(t *testing.T) {
	s := New(1)
	t0 := time.Unix(2000, 0)
	s.Prime(t0, []Sample{{Bytes: 1_000_000, Events: 5000, Stall: time.Second, Depth: 3}})

	// Prime consumes no telemetry window: the next tick still seeds.
	if s.Rounds() != 0 {
		t.Fatalf("Rounds after Prime = %d, want 0", s.Rounds())
	}
	l := s.Links()[0]
	if l.Bytes != 1_000_000 || l.Events != 5000 || l.Depth != 3 {
		t.Fatalf("primed cumulative view = %+v, want inherited totals", l)
	}
	if l.BytesPerRound != 0 || l.EventsPerRound != 0 {
		t.Fatalf("Prime moved the EWMAs: %+v", l)
	}

	// The seeding tick sees only the true post-promotion window, not
	// the inherited total.
	s.Tick(t0.Add(time.Second), []Sample{{Bytes: 1_000_500, Events: 5010, Stall: time.Second + time.Millisecond}})
	l = s.Links()[0]
	if l.BytesPerRound != 500 || l.EventsPerRound != 10 {
		t.Fatalf("first post-Prime tick = %+v, want window deltas 500/10", l)
	}
	if l.StallPerRound != time.Millisecond {
		t.Fatalf("StallPerRound = %v, want 1ms", l.StallPerRound)
	}
	// Bandwidth likewise: 500 B over the 1 s since Prime.
	if l.BandwidthBps != 500 {
		t.Fatalf("BandwidthBps = %v, want 500", l.BandwidthBps)
	}

	// Extra samples beyond the tracked link count are ignored, same as
	// Tick.
	s.Prime(t0, []Sample{{Bytes: 1}, {Bytes: 2}})
}
