package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// AuditEntry records one adaptation decision: the action taken, the
// regime installed, the monitored variable (and its thresholds) that
// drove the decision, and the full sample the controller observed.
// Self-adaptation evaluation needs exactly this — every decision
// logged with the values that triggered it — so regime flapping and
// threshold tuning can be diagnosed after the fact.
type AuditEntry struct {
	// Seq numbers entries in decision order (stamped by the log).
	Seq uint64 `json:"seq"`
	// At is the decision instant (stamped by the log when zero).
	At time.Time `json:"at"`
	// Action is "engage" (degraded regime installed), "revert"
	// (baseline reinstalled), or "promotion" (the central role moved to
	// a warm-standby mirror; see OldCentral/NewCentral/Epoch).
	Action string `json:"action"`
	// RegimeID/Regime identify the regime installed by the action.
	RegimeID uint8  `json:"regime_id"`
	Regime   string `json:"regime,omitempty"`
	// Site names the site whose sample drove the decision ("central"
	// or "mirror<N>"): under the per-site revert rule, the engage names
	// the overloaded site and the revert names the site whose report
	// completed the all-calm streak.
	Site string `json:"site,omitempty"`
	// Var is the monitored variable judged against Primary/Secondary:
	// for an engage, the variable whose value reached Primary; for a
	// revert, the variable that had engaged (its value is now below
	// Primary-Secondary, as are all others).
	Var string `json:"var"`
	// Value is Var's value in the observed sample.
	Value int `json:"value"`
	// Primary/Secondary are Var's configured thresholds.
	Primary   int `json:"primary"`
	Secondary int `json:"secondary"`
	// Ready/Backup/Pending are the full observed core.Sample; the
	// wire-telemetry extension fields are omitted when zero so
	// pre-telemetry audit files round-trip unchanged.
	Ready   int `json:"ready"`
	Backup  int `json:"backup"`
	Pending int `json:"pending"`
	// WireBytes/Outbox/ApplyLag are the sample's wire-telemetry
	// monitored variables (EWMA bytes/round on the busiest link,
	// deepest windowed outbox high-water mark, worst smoothed mirror
	// apply lag in microseconds).
	WireBytes int `json:"wire_bytes,omitempty"`
	Outbox    int `json:"outbox,omitempty"`
	ApplyLag  int `json:"apply_lag,omitempty"`
	// OldCentral/NewCentral identify the sites the central role moved
	// between, and Epoch the promotion epoch entered, when Action is
	// "promotion" (warm-standby failover). Omitted on adaptation
	// entries so pre-failover audit files round-trip unchanged.
	OldCentral string `json:"old_central,omitempty"`
	NewCentral string `json:"new_central,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// DefaultAuditCap is the ring capacity when NewAuditLog is given 0.
const DefaultAuditCap = 256

// AuditLog retains adaptation decisions in a bounded ring, optionally
// mirroring every entry to a durable append-only JSON-lines file (the
// oislog-style option: one self-framing record per decision, synced on
// write — decisions are rare, so durability costs nothing on the data
// path). All methods are safe for concurrent use; a nil log ignores
// appends.
type AuditLog struct {
	mu   sync.Mutex
	buf  []AuditEntry
	head int // index of oldest entry
	n    int
	seq  uint64
	f    *os.File
	w    *bufio.Writer
}

// NewAuditLog returns a ring of the given capacity (0 uses
// DefaultAuditCap).
func NewAuditLog(capacity int) *AuditLog {
	if capacity <= 0 {
		capacity = DefaultAuditCap
	}
	return &AuditLog{buf: make([]AuditEntry, capacity)}
}

// OpenDurable mirrors subsequent entries to a JSON-lines file at path
// (created or appended to).
func (l *AuditLog) OpenDurable(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: audit log: %w", err)
	}
	l.mu.Lock()
	l.f = f
	l.w = bufio.NewWriter(f)
	l.mu.Unlock()
	return nil
}

// Append records one decision, stamping Seq and (when zero) At.
func (l *AuditLog) Append(e AuditEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if e.At.IsZero() {
		e.At = time.Now()
	}
	if l.n == len(l.buf) {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
	} else {
		l.buf[(l.head+l.n)%len(l.buf)] = e
		l.n++
	}
	if l.w != nil {
		if b, err := json.Marshal(e); err == nil {
			l.w.Write(b)
			l.w.WriteByte('\n')
			l.w.Flush()
			l.f.Sync()
		}
	}
}

// Entries returns the retained entries, oldest first.
func (l *AuditLog) Entries() []AuditEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditEntry, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.head+i)%len(l.buf)])
	}
	return out
}

// Len returns the number of retained entries.
func (l *AuditLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the number of entries ever appended (the ring may
// retain fewer).
func (l *AuditLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close flushes and closes the durable file, if one is open.
func (l *AuditLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.w.Flush()
	err := l.f.Close()
	l.f, l.w = nil, nil
	return err
}

// ReadAuditLog parses a durable audit file back into entries.
func ReadAuditLog(path string) ([]AuditEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: audit log: %w", err)
	}
	defer f.Close()
	var out []AuditEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e AuditEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return out, fmt.Errorf("obs: audit log %s: %w", path, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: audit log %s: %w", path, err)
	}
	return out, nil
}
