// Package obs is the observability layer: a process-wide metrics
// registry with Prometheus text-format export, an event-lifecycle
// tracer that decomposes the paper's "update delay" into per-stage
// latencies, and an audit log recording every adaptation decision with
// the monitored-variable values that caused it. Each site (central or
// mirror) owns one Registry; the HTTP front exports it at /metrics.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adaptmirror/internal/metrics"
)

// Label is one metric label pair.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind is the Prometheus family type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindSummary
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// series is one labeled instrument inside a family. Exactly one of the
// instrument fields is set.
type series struct {
	labels  []Label // sorted by key
	key     string  // canonical rendering of labels (series identity)
	counter *metrics.Counter
	gauge   *metrics.Gauge
	hist    *metrics.Histogram
	rawHist bool           // hist samples are dimensionless values, not durations
	fn      func() float64 // CounterFunc/GaugeFunc
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	typed  bool // kind has been fixed by an instrument registration
	series []*series
	byKey  map[string]*series
}

// Registry is a process-wide set of named, labeled instruments. All
// methods are safe for concurrent use, and every method is a no-op (or
// returns a fresh unregistered instrument) on a nil receiver, so
// instrumented code never needs nil checks.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// canonLabels sorts a copy of ls by key and renders the series
// identity string.
func canonLabels(ls []Label) ([]Label, string) {
	if len(ls) == 0 {
		return nil, ""
	}
	out := make([]Label, len(ls))
	copy(out, ls)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	var b strings.Builder
	for i, l := range out {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return out, b.String()
}

// get returns (creating if needed) the series for (name, ls) in a
// family of kind k. It returns nil when the registry is nil or the
// name is already registered with a different kind.
func (r *Registry) get(name string, k kind, ls []Label) *series {
	if r == nil {
		return nil
	}
	labels, key := canonLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if !f.typed {
		f.kind, f.typed = k, true
	} else if f.kind != k {
		return nil
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: labels, key: key}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns (creating if needed) the counter named name with the
// given labels. On a nil registry it returns a fresh unregistered
// counter.
func (r *Registry) Counter(name string, ls ...Label) *metrics.Counter {
	s := r.get(name, kindCounter, ls)
	if s == nil {
		return &metrics.Counter{}
	}
	if s.counter == nil {
		s.counter = &metrics.Counter{}
		s.fn = nil
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge named name with the
// given labels. On a nil registry it returns a fresh unregistered
// gauge.
func (r *Registry) Gauge(name string, ls ...Label) *metrics.Gauge {
	s := r.get(name, kindGauge, ls)
	if s == nil {
		return &metrics.Gauge{}
	}
	if s.gauge == nil {
		s.gauge = &metrics.Gauge{}
		s.fn = nil
	}
	return s.gauge
}

// Histogram returns (creating if needed) the histogram named name with
// the given labels, exported as a Prometheus summary. On a nil
// registry it returns a fresh unregistered histogram.
func (r *Registry) Histogram(name string, ls ...Label) *metrics.Histogram {
	s := r.get(name, kindSummary, ls)
	if s == nil {
		return metrics.NewHistogram(0)
	}
	if s.hist == nil {
		s.hist = metrics.NewHistogram(0)
	}
	return s.hist
}

// ValueHistogram returns (creating if needed) a histogram whose
// samples are dimensionless values rather than durations: callers
// record a value n as time.Duration(n), and the summary renders the
// raw numbers instead of seconds. Size-style distributions (bytes per
// frame, events per batch) use it. On a nil registry it returns a
// fresh unregistered histogram.
func (r *Registry) ValueHistogram(name string, ls ...Label) *metrics.Histogram {
	s := r.get(name, kindSummary, ls)
	if s == nil {
		return metrics.NewHistogram(0)
	}
	if s.hist == nil {
		s.hist = metrics.NewHistogram(0)
	}
	s.rawHist = true
	return s.hist
}

// RegisterCounter exposes an existing counter under (name, labels).
func (r *Registry) RegisterCounter(name string, c *metrics.Counter, ls ...Label) {
	if s := r.get(name, kindCounter, ls); s != nil {
		s.counter = c
		s.fn = nil
	}
}

// RegisterGauge exposes an existing gauge under (name, labels).
func (r *Registry) RegisterGauge(name string, g *metrics.Gauge, ls ...Label) {
	if s := r.get(name, kindGauge, ls); s != nil {
		s.gauge = g
		s.fn = nil
	}
}

// RegisterHistogram exposes an existing histogram under (name,
// labels), exported as a Prometheus summary.
func (r *Registry) RegisterHistogram(name string, h *metrics.Histogram, ls ...Label) {
	if s := r.get(name, kindSummary, ls); s != nil {
		s.hist = h
	}
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time (for instruments that already live elsewhere as atomics).
// fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name string, fn func() float64, ls ...Label) {
	if s := r.get(name, kindCounter, ls); s != nil {
		s.fn = fn
		s.counter = nil
	}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name string, fn func() float64, ls ...Label) {
	if s := r.get(name, kindGauge, ls); s != nil {
		s.fn = fn
		s.gauge = nil
	}
}

// Describe attaches HELP text to a family. The family's kind stays
// open until the first instrument registration fixes it.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
		return
	}
	r.families[name] = &family{name: name, help: help, byKey: make(map[string]*series)}
}

// Families returns the number of registered metric families.
func (r *Registry) Families() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.families)
}

// summaryQuantiles are the quantiles exported for histogram families.
var summaryQuantiles = []float64{50, 90, 99}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// renderLabels renders a label set (plus optional extra pairs) as
// {k="v",...}, or "" when empty.
func renderLabels(ls []Label, extra ...Label) string {
	if len(ls)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, l := range ls {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
		n++
	}
	for _, l := range extra {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
		n++
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered family in the Prometheus
// text exposition format (version 0.0.4): families sorted by name,
// series by label set, histograms as summaries with q0.5/q0.9/q0.99
// plus _sum (seconds) and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		// Snapshot the series list under the lock; instrument reads are
		// individually synchronized by the instruments themselves.
		r.mu.Lock()
		srs := make([]*series, len(f.series))
		copy(srs, f.series)
		help := f.help
		k := f.kind
		r.mu.Unlock()
		if len(srs) == 0 {
			continue
		}
		sort.Slice(srs, func(i, j int) bool { return srs[i].key < srs[j].key })

		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, k); err != nil {
			return err
		}
		for _, s := range srs {
			var err error
			switch {
			case s.fn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.fn()))
			case s.counter != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.counter.Value())
			case s.gauge != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.gauge.Value())
			case s.hist != nil:
				err = writeSummary(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSummary renders one histogram series as a Prometheus summary —
// in seconds for duration histograms, as raw values for value
// histograms (ValueHistogram).
func writeSummary(w io.Writer, name string, s *series) error {
	val := func(d time.Duration) float64 {
		if s.rawHist {
			return float64(d)
		}
		return d.Seconds()
	}
	qs := s.hist.Quantiles(summaryQuantiles...)
	for i, p := range summaryQuantiles {
		q := L("quantile", formatFloat(p/100))
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			name, renderLabels(s.labels, q), formatFloat(val(qs[i]))); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, renderLabels(s.labels), formatFloat(val(s.hist.Sum()))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels), s.hist.Count())
	return err
}

// secondsFunc adapts a DurationCounter-style accessor into a
// CounterFunc reading seconds.
func secondsFunc(v func() time.Duration) func() float64 {
	return func() float64 { return v().Seconds() }
}

// RegisterDurationCounter exposes a cumulative duration counter as a
// seconds-valued counter family.
func (r *Registry) RegisterDurationCounter(name string, d *metrics.DurationCounter, ls ...Label) {
	r.CounterFunc(name, secondsFunc(d.Value), ls...)
}
