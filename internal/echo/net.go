package echo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adaptmirror/internal/event"
)

// The TCP transport exports a Bus's channels to other machines. Links
// are directional: a send link pushes events into a remote channel, a
// recv link subscribes to one. Bidirectional control traffic uses a
// pair of directional channels (e.g. "ctrl.up"/"ctrl.down"), which
// avoids loopback of a site's own submissions.
//
// Handshake (client → server): 1 mode byte ('S' send, 'R' recv),
// uint16 name length, name bytes. Then framed events flow in the
// link's direction until either side closes.

// Link modes.
const (
	modeSend = 'S'
	modeRecv = 'R'
)

const maxChannelName = 255

// Server exports a Bus over a net.Listener.
type Server struct {
	bus *Bus

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a Server exporting bus.
func NewServer(bus *Bus) *Server {
	return &Server{bus: bus, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close. It blocks; run it in a
// goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("echo: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves; it returns the bound
// address on a channel-free API by returning after listen fails, so
// most callers use Listen + Serve directly. Provided for cmd tools.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	mode, name, err := readHandshake(conn)
	if err != nil {
		return
	}
	ch, err := s.bus.Open(name)
	if err != nil {
		return
	}
	switch mode {
	case modeSend:
		// ReadFrame discriminates columnar batch frames from legacy
		// per-event frames on the wire, so mixed-version peers share
		// one connection format. Batch frames decode into pooled slab
		// views published zero-copy; the server's reference is dropped
		// as soon as the channel has taken its own.
		r := event.NewReader(conn)
		for {
			e, b, err := r.ReadFrame()
			if err != nil {
				return
			}
			if b != nil {
				err = ch.SubmitOwned(b.Events, b)
				b.Release()
				if err != nil {
					return
				}
				continue
			}
			if ch.Submit(e) != nil {
				return
			}
		}
	case modeRecv:
		w := event.NewWriter(conn)
		var failed atomic.Bool
		var sub *Subscription
		sub, err := ch.Subscribe(func(e *event.Event) {
			if failed.Load() {
				return
			}
			if err := w.WriteEvent(e); err != nil {
				failed.Store(true)
				conn.Close()
				return
			}
			if err := w.Flush(); err != nil {
				failed.Store(true)
				conn.Close()
			}
		})
		if err != nil {
			return
		}
		// Block until the peer disconnects (or Close tears the conn
		// down), then detach the subscription.
		io.Copy(io.Discard, conn)
		failed.Store(true)
		sub.Cancel()
	}
}

// Close stops accepting, closes all live connections, and waits for
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

func writeHandshake(conn net.Conn, mode byte, name string) error {
	if len(name) > maxChannelName {
		return fmt.Errorf("echo: channel name too long (%d bytes)", len(name))
	}
	buf := make([]byte, 0, 3+len(name))
	buf = append(buf, mode)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	_, err := conn.Write(buf)
	return err
}

func readHandshake(conn net.Conn) (mode byte, name string, err error) {
	var hdr [3]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, "", err
	}
	mode = hdr[0]
	if mode != modeSend && mode != modeRecv {
		return 0, "", fmt.Errorf("echo: bad handshake mode %q", mode)
	}
	n := int(binary.LittleEndian.Uint16(hdr[1:]))
	if n > maxChannelName {
		return 0, "", fmt.Errorf("echo: channel name too long (%d bytes)", n)
	}
	nameBuf := make([]byte, n)
	if _, err := io.ReadFull(conn, nameBuf); err != nil {
		return 0, "", err
	}
	return mode, string(nameBuf), nil
}

// SendLink pushes events into a remote channel. Safe for concurrent
// Submit.
type SendLink struct {
	name string
	conn net.Conn
	mu   sync.Mutex
	w    *event.Writer
	err  error
	// writeTimeout, when positive, bounds every write on the link so a
	// peer that accepts but never reads fails the submit instead of
	// wedging the caller. A deadline error poisons the link like any
	// other write error; the owner redials.
	writeTimeout time.Duration

	// legacy forces per-event framing for batches, for peers that
	// predate the columnar batch frame. Single-event Submit always
	// uses the legacy frame (control links stay byte-compatible).
	legacy bool

	submitted atomic.Uint64
	bytes     atomic.Uint64
}

// SetLegacyFraming switches batch submissions to the per-event legacy
// codec (true) or the columnar batch frame (false, the default). The
// receive side auto-detects per frame, so this only needs to change
// for peers too old to read batch frames.
func (l *SendLink) SetLegacyFraming(legacy bool) {
	l.mu.Lock()
	l.legacy = legacy
	l.mu.Unlock()
}

// DialSend connects a send link for the named channel at addr.
func DialSend(addr, name string) (*SendLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSendLink(conn, name)
}

// DialSendTimeout is DialSend with the dial and the handshake write
// bounded by timeout (0 behaves like DialSend). The returned link
// keeps timeout as its per-write bound; adjust with SetWriteTimeout.
func DialSendTimeout(addr, name string, timeout time.Duration) (*SendLink, error) {
	if timeout <= 0 {
		return DialSend(addr, name)
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	l, err := NewSendLink(conn, name)
	if err != nil {
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	l.SetWriteTimeout(timeout)
	return l, nil
}

// SetWriteTimeout bounds every subsequent write on the link (0 removes
// the bound).
func (l *SendLink) SetWriteTimeout(d time.Duration) {
	l.mu.Lock()
	l.writeTimeout = d
	l.mu.Unlock()
}

// armDeadlineLocked applies the write deadline for one submission.
// Callers hold l.mu.
func (l *SendLink) armDeadlineLocked() {
	if l.writeTimeout > 0 {
		l.conn.SetWriteDeadline(time.Now().Add(l.writeTimeout))
	}
}

// NewSendLink performs the send handshake over an established
// connection (used with custom or shaped transports).
func NewSendLink(conn net.Conn, name string) (*SendLink, error) {
	if err := writeHandshake(conn, modeSend, name); err != nil {
		conn.Close()
		return nil, err
	}
	return &SendLink{name: name, conn: conn, w: event.NewWriter(conn)}, nil
}

// Name returns the remote channel name.
func (l *SendLink) Name() string { return l.name }

// Submit implements Channel-style submission over the link.
func (l *SendLink) Submit(e *event.Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.armDeadlineLocked()
	if err := l.w.WriteEvent(e); err != nil {
		l.err = err
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	l.submitted.Add(1)
	l.bytes.Add(uint64(len(e.Payload)))
	return nil
}

// SubmitBatch frames a whole batch into one buffered write and a
// single flush, amortizing the per-submission syscall and lock costs
// across the batch. Unless legacy framing is forced, the batch rides
// one columnar frame: headers packed per column, payloads
// concatenated into a single blob, nothing allocated per event.
func (l *SendLink) SubmitBatch(events []*event.Event) error {
	if len(events) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.armDeadlineLocked()
	write := l.w.WriteBatchFrame
	if l.legacy {
		write = l.w.WriteBatch
	}
	if err := write(events); err != nil {
		l.err = err
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	l.submitted.Add(uint64(len(events)))
	var bytes uint64
	for _, e := range events {
		bytes += uint64(len(e.Payload))
	}
	l.bytes.Add(bytes)
	return nil
}

// SubmitOwned implements the zero-copy submission contract: the link
// only encodes the views into its write buffer and retains nothing,
// so the caller's slabs are free for reuse the moment the call
// returns. ref is not touched.
func (l *SendLink) SubmitOwned(events []*event.Event, _ event.Ref) error {
	return l.SubmitBatch(events)
}

// Stats returns events and payload bytes submitted on the link.
func (l *SendLink) Stats() Stats {
	return Stats{Submitted: l.submitted.Load(), Bytes: l.bytes.Load()}
}

// Close shuts the link down.
func (l *SendLink) Close() error {
	l.mu.Lock()
	if l.err == nil {
		l.err = ErrClosed
	}
	l.mu.Unlock()
	return l.conn.Close()
}

// RecvLink subscribes to a remote channel and dispatches received
// events to local handlers.
type RecvLink struct {
	name string
	conn net.Conn

	mu       sync.Mutex
	handlers []Handler
	err      error
	done     chan struct{}

	received atomic.Uint64
}

// DialRecv connects a recv link for the named channel at addr.
func DialRecv(addr, name string) (*RecvLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewRecvLink(conn, name)
}

// NewRecvLink performs the recv handshake over an established
// connection.
func NewRecvLink(conn net.Conn, name string) (*RecvLink, error) {
	if err := writeHandshake(conn, modeRecv, name); err != nil {
		conn.Close()
		return nil, err
	}
	l := &RecvLink{name: name, conn: conn, done: make(chan struct{})}
	go l.run()
	return l, nil
}

// Name returns the remote channel name.
func (l *RecvLink) Name() string { return l.name }

// Subscribe registers h for events received on the link.
func (l *RecvLink) Subscribe(h Handler) {
	l.mu.Lock()
	l.handlers = append(l.handlers, h)
	l.mu.Unlock()
}

func (l *RecvLink) run() {
	defer close(l.done)
	r := event.NewReader(l.conn)
	for {
		e, err := r.ReadEvent()
		if err != nil {
			l.mu.Lock()
			if l.err == nil {
				l.err = err
			}
			l.mu.Unlock()
			return
		}
		l.received.Add(1)
		l.mu.Lock()
		hs := l.handlers
		l.mu.Unlock()
		for _, h := range hs {
			h(e)
		}
	}
}

// Received returns the number of events received so far.
func (l *RecvLink) Received() uint64 { return l.received.Load() }

// Err returns the terminal error of the link (nil while healthy, or
// io.EOF after a clean remote close).
func (l *RecvLink) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close shuts the link down and waits for the dispatch loop to exit.
func (l *RecvLink) Close() error {
	err := l.conn.Close()
	<-l.done
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
