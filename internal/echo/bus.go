package echo

import (
	"fmt"
	"sort"
	"sync"
)

// Bus is a process-local registry of named channels. A site creates
// one Bus and opens its data and control channels on it; the TCP
// server exports a Bus's channels to remote sites.
type Bus struct {
	mu       sync.Mutex
	channels map[string]*LocalChannel
	closed   bool
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{channels: make(map[string]*LocalChannel)}
}

// Open returns the channel with the given name, creating it if needed.
func (b *Bus) Open(name string) (*LocalChannel, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if c, ok := b.channels[name]; ok {
		return c, nil
	}
	c := NewLocal(name)
	b.channels[name] = c
	return c, nil
}

// Lookup returns the named channel or an error if it does not exist.
func (b *Bus) Lookup(name string) (*LocalChannel, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.channels[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("echo: no channel %q", name)
}

// Names returns the sorted names of all open channels.
func (b *Bus) Names() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.channels))
	for n := range b.channels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close closes every channel on the bus.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	chans := make([]*LocalChannel, 0, len(b.channels))
	for _, c := range b.channels {
		chans = append(chans, c)
	}
	b.mu.Unlock()
	for _, c := range chans {
		_ = c.Close()
	}
	return nil
}
