package echo

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptmirror/internal/event"
)

func ev(seq uint64) *event.Event {
	return &event.Event{Type: event.TypeFAAPosition, Seq: seq, Coalesced: 1, Payload: []byte{1, 2, 3}}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestLocalDeliveryOrder(t *testing.T) {
	c := NewLocal("data")
	var mu sync.Mutex
	var got []uint64
	_, err := c.Subscribe(func(e *event.Event) {
		mu.Lock()
		got = append(got, e.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := c.Submit(ev(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 100
	})
	mu.Lock()
	defer mu.Unlock()
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("delivery %d has seq %d: order violated", i, s)
		}
	}
}

func TestLocalSubmitBatch(t *testing.T) {
	c := NewLocal("data")
	var mu sync.Mutex
	var got []uint64
	if _, err := c.Subscribe(func(e *event.Event) {
		mu.Lock()
		got = append(got, e.Seq)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	batch := make([]*event.Event, 40)
	for i := range batch {
		batch[i] = ev(uint64(i))
	}
	if err := c.SubmitBatch(batch[:20]); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(batch[20:]); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBatch(nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 40
	})
	mu.Lock()
	defer mu.Unlock()
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("delivery %d has seq %d: order violated", i, s)
		}
	}
	st := c.Stats()
	if st.Submitted != 40 || st.Delivered != 40 || st.Bytes != 40*3 {
		t.Fatalf("Stats = %+v", st)
	}
	c.Close()
	if err := c.SubmitBatch(batch[:1]); err != ErrClosed {
		t.Fatalf("SubmitBatch after Close = %v, want ErrClosed", err)
	}
}

func TestLocalFanOut(t *testing.T) {
	c := NewLocal("data")
	const subs = 5
	var counts [subs]atomic.Uint64
	for i := 0; i < subs; i++ {
		i := i
		if _, err := c.Subscribe(func(*event.Event) { counts[i].Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		c.Submit(ev(uint64(i)))
	}
	waitFor(t, "fan-out deliveries", func() bool {
		for i := range counts {
			if counts[i].Load() != 20 {
				return false
			}
		}
		return true
	})
	st := c.Stats()
	if st.Submitted != 20 || st.Delivered != 100 || st.Bytes != 60 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestSlowSubscriberDoesNotBlockOthers(t *testing.T) {
	c := NewLocal("data")
	slowRelease := make(chan struct{})
	var slowStarted sync.Once
	started := make(chan struct{})
	c.Subscribe(func(*event.Event) {
		slowStarted.Do(func() { close(started) })
		<-slowRelease
	})
	var fast atomic.Uint64
	c.Subscribe(func(*event.Event) { fast.Add(1) })
	for i := 0; i < 10; i++ {
		c.Submit(ev(uint64(i)))
	}
	<-started
	waitFor(t, "fast subscriber to finish", func() bool { return fast.Load() == 10 })
	close(slowRelease)
}

func TestSubmitAfterClose(t *testing.T) {
	c := NewLocal("data")
	c.Close()
	if err := c.Submit(ev(1)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := c.Subscribe(func(*event.Event) {}); err != ErrClosed {
		t.Fatalf("Subscribe err = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestCloseDeliversPending(t *testing.T) {
	c := NewLocal("data")
	var n atomic.Uint64
	gate := make(chan struct{})
	c.Subscribe(func(*event.Event) {
		<-gate
		n.Add(1)
	})
	for i := 0; i < 50; i++ {
		c.Submit(ev(uint64(i)))
	}
	close(gate)
	c.Close() // Close waits for dispatchers to drain
	if n.Load() != 50 {
		t.Fatalf("delivered %d, want 50 (pending events must be delivered on Close)", n.Load())
	}
}

func TestSubscriptionCancel(t *testing.T) {
	c := NewLocal("data")
	var n atomic.Uint64
	sub, _ := c.Subscribe(func(*event.Event) { n.Add(1) })
	c.Submit(ev(1))
	waitFor(t, "first delivery", func() bool { return n.Load() == 1 })
	sub.Cancel()
	c.Submit(ev(2))
	time.Sleep(10 * time.Millisecond)
	if n.Load() != 1 {
		t.Fatalf("delivered %d after Cancel, want 1", n.Load())
	}
	if c.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d, want 0", c.Subscribers())
	}
	sub.Cancel() // idempotent
}

func TestSubscriptionPending(t *testing.T) {
	c := NewLocal("data")
	gate := make(chan struct{})
	sub, _ := c.Subscribe(func(*event.Event) { <-gate })
	for i := 0; i < 10; i++ {
		c.Submit(ev(uint64(i)))
	}
	// At least 8 must be queued (one may be in the handler, one batch
	// may have been taken).
	waitFor(t, "queue to fill", func() bool { return sub.Pending() >= 8 })
	close(gate)
	waitFor(t, "drain", func() bool { return sub.Pending() == 0 })
	c.Close()
}

func TestDerivedChannelFilters(t *testing.T) {
	src := NewLocal("data")
	d, err := Derive(src, "faa-only", func(e *event.Event) bool {
		return e.Type == event.TypeFAAPosition
	})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Uint64
	d.Subscribe(func(e *event.Event) {
		if e.Type != event.TypeFAAPosition {
			t.Error("filtered type leaked through")
		}
		n.Add(1)
	})
	src.Submit(ev(1))
	src.Submit(&event.Event{Type: event.TypeDeltaStatus, Seq: 2})
	src.Submit(ev(3))
	waitFor(t, "derived deliveries", func() bool { return n.Load() == 2 })
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	src.Submit(ev(4))
	time.Sleep(5 * time.Millisecond)
	if n.Load() != 2 {
		t.Fatalf("derived channel delivered after Close: %d", n.Load())
	}
}

func TestBusOpenIdempotent(t *testing.T) {
	b := NewBus()
	c1, err := b.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := b.Open("data")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("Open must return the same channel for the same name")
	}
	if _, err := b.Lookup("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown channel must fail")
	}
}

func TestBusNamesSorted(t *testing.T) {
	b := NewBus()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		b.Open(n)
	}
	names := b.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestBusCloseClosesChannels(t *testing.T) {
	b := NewBus()
	c, _ := b.Open("data")
	b.Close()
	if err := c.Submit(ev(1)); err != ErrClosed {
		t.Fatalf("Submit after bus close = %v, want ErrClosed", err)
	}
	if _, err := b.Open("new"); err != ErrClosed {
		t.Fatalf("Open after bus close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestConcurrentSubmitters(t *testing.T) {
	c := NewLocal("data")
	var n atomic.Uint64
	c.Subscribe(func(*event.Event) { n.Add(1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Submit(ev(uint64(i)))
			}
		}()
	}
	wg.Wait()
	waitFor(t, "all deliveries", func() bool { return n.Load() == 800 })
}

func BenchmarkLocalSubmit(b *testing.B) {
	c := NewLocal("data")
	var n atomic.Uint64
	c.Subscribe(func(*event.Event) { n.Add(1) })
	e := ev(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(e)
	}
	b.StopTimer()
	c.Close()
}
