package echo

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptmirror/internal/event"
)

// startServer returns a serving Server and its address.
func startServer(t *testing.T, bus *Bus) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(bus)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

func TestSendLinkDeliversToBusChannel(t *testing.T) {
	bus := NewBus()
	ch, _ := bus.Open("ingress")
	var n atomic.Uint64
	ch.Subscribe(func(e *event.Event) { n.Add(1) })
	_, addr := startServer(t, bus)

	link, err := DialSend(addr, "ingress")
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	for i := uint64(0); i < 25; i++ {
		if err := link.Submit(ev(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "server-side deliveries", func() bool { return n.Load() == 25 })
	st := link.Stats()
	if st.Submitted != 25 {
		t.Fatalf("link Submitted = %d, want 25", st.Submitted)
	}
}

func TestSendLinkSubmitBatch(t *testing.T) {
	bus := NewBus()
	ch, _ := bus.Open("ingress")
	var mu sync.Mutex
	var got []uint64
	ch.Subscribe(func(e *event.Event) {
		mu.Lock()
		got = append(got, e.Seq)
		mu.Unlock()
	})
	_, addr := startServer(t, bus)

	link, err := DialSend(addr, "ingress")
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	batch := make([]*event.Event, 30)
	for i := range batch {
		batch[i] = ev(uint64(i))
	}
	if err := link.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := link.SubmitBatch(nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server-side batch deliveries", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 30
	})
	mu.Lock()
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("delivery %d has seq %d: order violated", i, s)
		}
	}
	mu.Unlock()
	st := link.Stats()
	if st.Submitted != 30 || st.Bytes != 30*3 {
		t.Fatalf("link Stats = %+v", st)
	}
}

func TestRecvLinkReceivesFromBusChannel(t *testing.T) {
	bus := NewBus()
	ch, _ := bus.Open("updates")
	_, addr := startServer(t, bus)

	link, err := DialRecv(addr, "updates")
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	var got atomic.Uint64
	link.Subscribe(func(e *event.Event) { got.Add(1) })

	// Wait for the server-side subscription to attach before sending.
	waitFor(t, "remote subscription", func() bool { return ch.Subscribers() == 1 })
	for i := uint64(0); i < 10; i++ {
		if err := ch.Submit(ev(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "client-side deliveries", func() bool { return got.Load() == 10 })
	if link.Received() != 10 {
		t.Fatalf("Received = %d, want 10", link.Received())
	}
}

func TestEndToEndPipe(t *testing.T) {
	// source --SendLink--> server bus "data" --RecvLink--> sink
	bus := NewBus()
	ch, _ := bus.Open("data")
	_, addr := startServer(t, bus)

	recv, err := DialRecv(addr, "data")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	var seqs []uint64
	done := make(chan struct{})
	recv.Subscribe(func(e *event.Event) {
		seqs = append(seqs, e.Seq)
		if len(seqs) == 50 {
			close(done)
		}
	})
	waitFor(t, "subscription attach", func() bool { return ch.Subscribers() == 1 })

	send, err := DialSend(addr, "data")
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	for i := uint64(0); i < 50; i++ {
		e := ev(i)
		e.Payload = make([]byte, 512)
		if err := send.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out; got %d events", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("event %d has seq %d: ordering violated", i, s)
		}
	}
}

func TestRecvLinkCleanDisconnectDetachesSubscription(t *testing.T) {
	bus := NewBus()
	ch, _ := bus.Open("data")
	_, addr := startServer(t, bus)

	link, err := DialRecv(addr, "data")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription attach", func() bool { return ch.Subscribers() == 1 })
	link.Close()
	waitFor(t, "subscription detach", func() bool { return ch.Subscribers() == 0 })
}

func TestServerCloseUnblocksLinks(t *testing.T) {
	bus := NewBus()
	bus.Open("data")
	srv, addr := startServer(t, bus)

	recv, err := DialRecv(addr, "data")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	waitFor(t, "recv link to observe close", func() bool { return recv.Err() != nil })
	recv.Close()

	send, err := DialSend(addr, "data")
	if err == nil {
		// Dial may have raced the close; submitting must eventually fail.
		var failed bool
		for i := 0; i < 1000 && !failed; i++ {
			failed = send.Submit(ev(1)) != nil
		}
		send.Close()
		if !failed {
			t.Fatal("send link kept working after server close")
		}
	}
}

func TestSendLinkSubmitAfterClose(t *testing.T) {
	bus := NewBus()
	bus.Open("data")
	_, addr := startServer(t, bus)
	link, err := DialSend(addr, "data")
	if err != nil {
		t.Fatal(err)
	}
	link.Close()
	if err := link.Submit(ev(1)); err == nil {
		t.Fatal("Submit after Close must fail")
	}
}

func TestHandshakeRejectsBadMode(t *testing.T) {
	bus := NewBus()
	_, addr := startServer(t, bus)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{'X', 4, 0, 'd', 'a', 't', 'a'})
	// Server must close the connection.
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept connection open after bad handshake")
	}
}

func TestHandshakeNameTooLong(t *testing.T) {
	conn, _ := net.Pipe()
	defer conn.Close()
	long := make([]byte, 300)
	if err := writeHandshake(conn, modeSend, string(long)); err == nil {
		t.Fatal("want error for oversized channel name")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := DialSend("127.0.0.1:1", "data"); err == nil {
		t.Fatal("DialSend to closed port must fail")
	}
	if _, err := DialRecv("127.0.0.1:1", "data"); err == nil {
		t.Fatal("DialRecv to closed port must fail")
	}
}

func TestBidirectionalControlPair(t *testing.T) {
	// The pattern sites use for control traffic: two directional
	// channels, one per direction.
	bus := NewBus()
	up, _ := bus.Open("ctrl.up")
	down, _ := bus.Open("ctrl.down")
	_, addr := startServer(t, bus)

	sendUp, err := DialSend(addr, "ctrl.up")
	if err != nil {
		t.Fatal(err)
	}
	defer sendUp.Close()
	recvDown, err := DialRecv(addr, "ctrl.down")
	if err != nil {
		t.Fatal(err)
	}
	defer recvDown.Close()

	// Server side: echo each ctrl.up event back on ctrl.down.
	up.Subscribe(func(e *event.Event) {
		reply := e.Clone()
		reply.Type = event.TypeChkptReply
		down.Submit(reply)
	})
	var got atomic.Uint64
	recvDown.Subscribe(func(e *event.Event) {
		if e.Type == event.TypeChkptReply {
			got.Add(1)
		}
	})
	waitFor(t, "down subscription", func() bool { return down.Subscribers() == 1 })

	for i := 0; i < 5; i++ {
		sendUp.Submit(event.NewControl(event.TypeChkpt, nil))
	}
	waitFor(t, "round trips", func() bool { return got.Load() == 5 })
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	bus := NewBus()
	ch, _ := bus.Open("data")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(bus)
	go srv.Serve(l)
	defer srv.Close()

	send, err := DialSend(l.Addr().String(), "data")
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	got := make(chan struct{}, 1024)
	ch.Subscribe(func(*event.Event) { got <- struct{}{} })
	e := ev(1)
	e.Payload = make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := send.Submit(e); err != nil {
			b.Fatal(err)
		}
		<-got
	}
}

// TestSendLinkLegacyFraming pins the wire behavior behind
// SetLegacyFraming: a legacy link must put per-event frames on the
// wire (each delivered singly, never through the server's owned-batch
// path), while the default link carries one columnar frame per
// SubmitBatch, observable as a single owned-batch delivery. This is
// what keeps the mixed-generation cluster configuration honest — if
// the knob silently stopped switching codecs, interop tests upstream
// would pass without exercising the legacy decoder at all.
func TestSendLinkLegacyFraming(t *testing.T) {
	for _, legacy := range []bool{true, false} {
		name := "columnar"
		if legacy {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			bus := NewBus()
			ch, _ := bus.Open("data")
			var singles, batches atomic.Uint64
			ch.SubscribeBatch(
				func(e *event.Event) { singles.Add(1) },
				func(es []*event.Event, ref event.Ref) { batches.Add(uint64(len(es))) },
			)
			_, addr := startServer(t, bus)

			link, err := DialSend(addr, "data")
			if err != nil {
				t.Fatal(err)
			}
			defer link.Close()
			link.SetLegacyFraming(legacy)

			batch := make([]*event.Event, 20)
			for i := range batch {
				batch[i] = ev(uint64(i))
			}
			if err := link.SubmitBatch(batch); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "wire deliveries", func() bool {
				return singles.Load()+batches.Load() == 20
			})
			if legacy && singles.Load() != 20 {
				t.Fatalf("legacy framing: %d single + %d batched deliveries, want 20 + 0",
					singles.Load(), batches.Load())
			}
			if !legacy && batches.Load() != 20 {
				t.Fatalf("columnar framing: %d single + %d batched deliveries, want 0 + 20",
					singles.Load(), batches.Load())
			}
		})
	}
}
