// Package echo provides the event-channel communication substrate the
// mirroring framework is written against, modeled on the ECho event
// middleware the paper uses (Section 3.3): named logical event
// channels connecting sources, mirrors, and clients, with separate
// 'data' and 'control' channels per link, local fan-out delivery, and
// a TCP transport for deployment across real machines. Derived
// channels apply a filter predicate at the channel level, supporting
// content-based filtering of mirrored events.
package echo

import (
	"errors"
	"sync"
	"sync/atomic"

	"adaptmirror/internal/event"
)

// ErrClosed is returned when submitting to a closed channel.
var ErrClosed = errors.New("echo: channel closed")

// Handler consumes events delivered on a channel. Handlers of one
// subscription are invoked sequentially in submission order; distinct
// subscriptions run concurrently.
type Handler func(*event.Event)

// BatchHandler consumes owned batches (LocalChannel.SubmitOwned): the
// events are pooled views borrowing from slabs guarded by ref, and the
// slice and views are valid only for the duration of the call. A
// handler keeping any view longer must ref.Retain() before returning
// and ref.Release() once done.
type BatchHandler func(events []*event.Event, ref event.Ref)

// Channel is a logical event channel: submitted events are delivered
// to every subscriber.
type Channel interface {
	// Name identifies the channel (unique within a Bus).
	Name() string
	// Submit delivers e to all current subscribers. The event must not
	// be mutated after submission.
	Submit(e *event.Event) error
	// Subscribe registers h; delivery begins with the next Submit.
	Subscribe(h Handler) (*Subscription, error)
	// Close tears the channel down; pending events are still delivered.
	Close() error
}

// Stats counts traffic through a channel.
type Stats struct {
	Submitted uint64 // events submitted
	Delivered uint64 // event deliveries (submissions × subscribers)
	Bytes     uint64 // payload bytes submitted
}

// LocalChannel is an in-process channel. Each subscription owns a
// dispatch goroutine fed by an unbounded queue, so a slow subscriber
// delays only itself — matching ECho's per-subscriber delivery.
type LocalChannel struct {
	name string

	mu     sync.Mutex
	subs   []*Subscription
	closed bool

	submitted atomic.Uint64
	delivered atomic.Uint64
	bytes     atomic.Uint64
}

// NewLocal creates a standalone local channel (not attached to a Bus).
func NewLocal(name string) *LocalChannel {
	return &LocalChannel{name: name}
}

// Name implements Channel.
func (c *LocalChannel) Name() string { return c.name }

// Submit implements Channel.
func (c *LocalChannel) Submit(e *event.Event) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	subs := c.subs
	c.mu.Unlock()

	c.submitted.Add(1)
	c.bytes.Add(uint64(len(e.Payload)))
	for _, s := range subs {
		if s.deliver(e) {
			c.delivered.Add(1)
		}
	}
	return nil
}

// SubmitBatch delivers a whole batch to all current subscribers with
// one channel-lock acquisition and one queue append per subscriber.
// Events must not be mutated after submission; the channel retains the
// events, not the passed slice.
func (c *LocalChannel) SubmitBatch(events []*event.Event) error {
	if len(events) == 0 {
		return nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	subs := c.subs
	c.mu.Unlock()

	c.submitted.Add(uint64(len(events)))
	var bytes uint64
	for _, e := range events {
		bytes += uint64(len(e.Payload))
	}
	c.bytes.Add(bytes)
	for _, s := range subs {
		if n := s.deliverBatch(events); n > 0 {
			c.delivered.Add(uint64(n))
		}
	}
	return nil
}

// SubmitOwned delivers a batch of pooled event views guarded by ref
// with zero payload copies. Each batch-aware subscriber receives the
// events through its BatchHandler under the borrow-during-call
// contract; plain-handler subscribers receive them one event at a
// time with a reference retained forever on their behalf (a plain
// Handler may keep events indefinitely, so the slab is surrendered to
// the garbage collector instead of the pool — correctness over
// reuse). The caller's own reference is untouched; the passed slice
// is never retained.
func (c *LocalChannel) SubmitOwned(events []*event.Event, ref event.Ref) error {
	if len(events) == 0 {
		return nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	subs := c.subs
	c.mu.Unlock()

	c.submitted.Add(uint64(len(events)))
	var bytes uint64
	for _, e := range events {
		bytes += uint64(len(e.Payload))
	}
	c.bytes.Add(bytes)
	for _, s := range subs {
		if n := s.deliverOwned(events, ref); n > 0 {
			c.delivered.Add(uint64(n))
		}
	}
	return nil
}

// Subscribe implements Channel.
func (c *LocalChannel) Subscribe(h Handler) (*Subscription, error) {
	return c.subscribe(h, nil)
}

// SubscribeBatch registers a subscriber that receives owned batches
// (SubmitOwned) through bh and everything else through h. Both
// callbacks run on the subscription's dispatch goroutine, sequentially
// in submission order.
func (c *LocalChannel) SubscribeBatch(h Handler, bh BatchHandler) (*Subscription, error) {
	return c.subscribe(h, bh)
}

func (c *LocalChannel) subscribe(h Handler, bh BatchHandler) (*Subscription, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	s := newSubscription(c, h, bh)
	c.subs = append(c.subs, s)
	return s, nil
}

// Close implements Channel. Events already queued to subscribers are
// still delivered; subsequent Submits fail with ErrClosed.
func (c *LocalChannel) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	subs := c.subs
	c.subs = nil
	c.mu.Unlock()
	for _, s := range subs {
		s.stop()
	}
	return nil
}

// Stats returns a snapshot of the channel's traffic counters.
func (c *LocalChannel) Stats() Stats {
	return Stats{
		Submitted: c.submitted.Load(),
		Delivered: c.delivered.Load(),
		Bytes:     c.bytes.Load(),
	}
}

// Subscribers returns the current number of subscriptions.
func (c *LocalChannel) Subscribers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}

func (c *LocalChannel) unsubscribe(target *Subscription) {
	c.mu.Lock()
	for i, s := range c.subs {
		if s == target {
			c.subs = append(c.subs[:i], c.subs[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	target.stop()
}

// subItem is one unit of a subscription's dispatch queue: a single
// event, or an owned batch (slice copy plus one retained reference).
type subItem struct {
	e     *event.Event
	batch []*event.Event
	ref   event.Ref
}

// Subscription is one subscriber's attachment to a channel.
type Subscription struct {
	ch      *LocalChannel
	handler Handler
	bh      BatchHandler // nil for plain subscribers

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []subItem
	pending int // events queued, across all items
	stopped bool
	done    chan struct{}
}

func newSubscription(c *LocalChannel, h Handler, bh BatchHandler) *Subscription {
	s := &Subscription{ch: c, handler: h, bh: bh, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

func (s *Subscription) deliver(e *event.Event) bool {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return false
	}
	s.queue = append(s.queue, subItem{e: e})
	s.pending++
	s.cond.Signal()
	s.mu.Unlock()
	return true
}

// deliverBatch queues a whole batch under one lock acquisition and
// returns the number of events accepted (0 when stopped). The channel
// retains the events, never the slice.
func (s *Subscription) deliverBatch(events []*event.Event) int {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0
	}
	for _, e := range events {
		s.queue = append(s.queue, subItem{e: e})
	}
	s.pending += len(events)
	s.cond.Signal()
	s.mu.Unlock()
	return len(events)
}

// deliverOwned queues an owned batch: the slice is copied (the caller
// only lends it) and one reference is taken on the subscriber's
// behalf. Batch-aware subscribers give it back after their handler
// returns; plain ones hold it forever (see SubmitOwned).
func (s *Subscription) deliverOwned(events []*event.Event, ref event.Ref) int {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0
	}
	if ref != nil {
		ref.Retain()
	}
	s.queue = append(s.queue, subItem{batch: append([]*event.Event(nil), events...), ref: ref})
	s.pending += len(events)
	s.cond.Signal()
	s.mu.Unlock()
	return len(events)
}

func (s *Subscription) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.stopped {
			s.mu.Unlock()
			return
		}
		items := s.queue
		s.queue = nil
		s.mu.Unlock()
		for i := range items {
			it := &items[i]
			switch {
			case it.batch == nil:
				s.handler(it.e)
				s.drained(1)
			case s.bh != nil:
				s.bh(it.batch, it.ref)
				if it.ref != nil {
					it.ref.Release()
				}
				s.drained(len(it.batch))
			default:
				// Plain subscriber: hand the views over one at a time
				// and keep the retained reference — the handler may
				// hold them past the call, so the slab must never be
				// recycled under it.
				for _, e := range it.batch {
					s.handler(e)
				}
				s.drained(len(it.batch))
			}
			*it = subItem{}
		}
	}
}

func (s *Subscription) drained(n int) {
	s.mu.Lock()
	s.pending -= n
	s.mu.Unlock()
}

func (s *Subscription) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// Cancel detaches the subscription and waits for its dispatcher to
// drain queued events.
func (s *Subscription) Cancel() { s.ch.unsubscribe(s) }

// Pending returns the number of undelivered events queued to this
// subscriber.
func (s *Subscription) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Derive creates a new channel fed by src through filter: events for
// which filter returns true are re-submitted on the derived channel.
// This is ECho's derived-event-channel mechanism, used for
// content-based filtering of mirror traffic. Closing the derived
// channel cancels the feeding subscription.
func Derive(src Channel, name string, filter func(*event.Event) bool) (*DerivedChannel, error) {
	d := &DerivedChannel{LocalChannel: NewLocal(name)}
	sub, err := src.Subscribe(func(e *event.Event) {
		if filter(e) {
			_ = d.LocalChannel.Submit(e)
		}
	})
	if err != nil {
		return nil, err
	}
	d.src = sub
	return d, nil
}

// DerivedChannel is a filtered view of another channel.
type DerivedChannel struct {
	*LocalChannel
	src *Subscription
}

// Close detaches from the source channel and closes the derived
// channel.
func (d *DerivedChannel) Close() error {
	d.src.Cancel()
	return d.LocalChannel.Close()
}
