package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond {
		t.Fatalf("Min = %v", h.Min())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("Max = %v", h.Max())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v, want 50.5ms", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Percentile(95); got != 95*time.Millisecond {
		t.Fatalf("p95 = %v, want 95ms", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	if got := h.Percentile(0); got != time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms", got)
	}
}

func TestHistogramCapRetention(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i))
	}
	// Count and extremes stay exact even past the retention cap.
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 99 {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram(0)
	h.Record(time.Millisecond)
	s := h.Summary()
	for _, want := range []string{"n=1", "mean=", "p50=", "p95=", "max="} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary %q missing %q", s, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Fatalf("Count = %d, want 2000", h.Count())
	}
}

func TestSeriesBinning(t *testing.T) {
	start := time.Unix(1000, 0)
	s := NewSeries(start, time.Second)
	s.Observe(start.Add(100*time.Millisecond), 10)
	s.Observe(start.Add(900*time.Millisecond), 20)
	s.Observe(start.Add(2500*time.Millisecond), 5)
	bins := s.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %v, want 3 bins", bins)
	}
	if bins[0] != 15 {
		t.Fatalf("bin0 = %v, want 15", bins[0])
	}
	if !math.IsNaN(bins[1]) {
		t.Fatalf("bin1 = %v, want NaN (empty)", bins[1])
	}
	if bins[2] != 5 {
		t.Fatalf("bin2 = %v, want 5", bins[2])
	}
	counts := s.Counts()
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
}

func TestSeriesEarlyObservationsClampToBinZero(t *testing.T) {
	start := time.Unix(1000, 0)
	s := NewSeries(start, time.Second)
	s.Observe(start.Add(-5*time.Second), 42)
	bins := s.Bins()
	if len(bins) != 1 || bins[0] != 42 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestSeriesAggregates(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewSeries(start, time.Second)
	s.Observe(start.Add(500*time.Millisecond), 10)
	s.Observe(start.Add(1500*time.Millisecond), 30)
	s.Observe(start.Add(3500*time.Millisecond), 20)
	if got := s.MaxBin(); got != 30 {
		t.Fatalf("MaxBin = %v, want 30", got)
	}
	if got := s.MeanOfBins(); got != 20 {
		t.Fatalf("MeanOfBins = %v, want 20", got)
	}
}

func TestSeriesDefaultWidth(t *testing.T) {
	s := NewSeries(time.Now(), 0)
	if s.width != time.Second {
		t.Fatalf("default width = %v, want 1s", s.width)
	}
}

func TestSeriesEmptyAggregates(t *testing.T) {
	s := NewSeries(time.Now(), time.Second)
	if s.MaxBin() != 0 || s.MeanOfBins() != 0 {
		t.Fatal("empty series aggregates must be 0")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(0)
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}

func BenchmarkSeriesObserve(b *testing.B) {
	s := NewSeries(time.Now(), time.Millisecond)
	at := time.Now()
	for i := 0; i < b.N; i++ {
		s.Observe(at, float64(i))
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("zero gauge must report zeros")
	}
	g.Set(5)
	g.Set(12)
	g.Set(3)
	if g.Value() != 3 {
		t.Fatalf("Value = %d, want 3", g.Value())
	}
	if g.Max() != 12 {
		t.Fatalf("Max = %d, want 12", g.Max())
	}
	g.Add(4)
	if g.Value() != 7 {
		t.Fatalf("Value after Add = %d, want 7", g.Value())
	}
	if g.Max() != 12 {
		t.Fatalf("Max after Add = %d, want 12", g.Max())
	}
	g.Add(10)
	if g.Max() != 17 {
		t.Fatalf("Max = %d, want 17", g.Max())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("Value = %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > 8 {
		t.Fatalf("Max = %d, want within [1, 8]", g.Max())
	}
}

// TestGaugeTakeMax pins the windowed high-water contract: TakeMax
// returns the mark accumulated since the previous take and restarts
// the window at the current value, so a later burst is visible in its
// own window and a calm window reports only the standing depth.
func TestGaugeTakeMax(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Set(9)
	g.Set(2)
	if got := g.TakeMax(); got != 9 {
		t.Fatalf("first TakeMax = %d, want 9", got)
	}
	// The new window starts at the current value, not zero.
	if got := g.TakeMax(); got != 2 {
		t.Fatalf("calm-window TakeMax = %d, want standing value 2", got)
	}
	g.Set(5)
	if got := g.TakeMax(); got != 5 {
		t.Fatalf("burst-window TakeMax = %d, want 5", got)
	}
	// After a take, Max reports the new window's mark.
	if got := g.Max(); got != 5 {
		t.Fatalf("Max after TakeMax = %d, want windowed 5", got)
	}
}

func TestDurationCounter(t *testing.T) {
	var d DurationCounter
	d.Add(3 * time.Millisecond)
	d.Add(2 * time.Millisecond)
	d.Add(0)
	d.Add(-time.Second) // ignored
	if d.Value() != 5*time.Millisecond {
		t.Fatalf("Value = %v, want 5ms", d.Value())
	}
}

func TestHistogramReservoirSampling(t *testing.T) {
	h := NewHistogram(100)
	n := 100_000
	for i := 0; i < n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != uint64(n) {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	// Exact aggregates survive sampling.
	if want := time.Duration(n-1) * time.Microsecond; h.Max() != want {
		t.Fatalf("Max = %v, want %v", h.Max(), want)
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0", h.Min())
	}
	if want := time.Duration(n) * time.Duration(n-1) / 2 * time.Microsecond; h.Sum() != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), want)
	}
	// A uniform ramp sampled uniformly keeps the median near the middle;
	// without reservoir eviction the retained samples would all be from
	// the first 100 recordings and p50 would be ~50µs.
	p50 := h.Percentile(50)
	mid := time.Duration(n/2) * time.Microsecond
	if p50 < mid/4 || p50 > mid*7/4 {
		t.Fatalf("p50 = %v, want near %v (reservoir not uniform)", p50, mid)
	}
	if p100 := h.Percentile(100); p100 < mid {
		t.Fatalf("p100 over retained samples = %v, want tail coverage past %v", p100, mid)
	}
}

func TestHistogramQuantilesSinglePass(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	qs := h.Quantiles(50, 90, 99)
	want := []time.Duration{50 * time.Millisecond, 90 * time.Millisecond, 99 * time.Millisecond}
	for i := range qs {
		if qs[i] != want[i] {
			t.Fatalf("Quantiles[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
	if got := NewHistogram(0).Quantiles(50, 95); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty histogram Quantiles = %v, want zeros", got)
	}
}

func TestHistogramDirtySortInterleaved(t *testing.T) {
	// Percentile reads interleaved with writes must stay correct: each
	// read sorts at most once, and a following Record dirties the order
	// again.
	h := NewHistogram(0)
	h.Record(30 * time.Millisecond)
	h.Record(10 * time.Millisecond)
	if got := h.Percentile(100); got != 30*time.Millisecond {
		t.Fatalf("p100 = %v, want 30ms", got)
	}
	h.Record(20 * time.Millisecond)
	if got := h.Percentile(50); got != 20*time.Millisecond {
		t.Fatalf("p50 after new sample = %v, want 20ms", got)
	}
	h.Record(5 * time.Millisecond)
	if got := h.Percentile(0); got != 5*time.Millisecond {
		t.Fatalf("p0 = %v, want 5ms", got)
	}
}

func TestHistogramConcurrentReadWrite(t *testing.T) {
	h := NewHistogram(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Record(time.Duration(seed*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Percentile(95)
				h.Quantiles(50, 90, 99)
				h.Summary()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}
