// Package metrics provides the measurement primitives the experiment
// harness uses: counters, duration histograms with percentiles, and
// time-binned series (Figure 9 plots update delay against wall time).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge tracks an instantaneous level and its high-water mark. The
// fan-out pipeline uses one per mirror link to expose outbox depth.
type Gauge struct {
	mu  sync.Mutex
	v   int64
	max int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.v = v
	if v > g.max {
		g.max = v
	}
	g.mu.Unlock()
}

// Add adjusts the level by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	g.mu.Lock()
	g.v += d
	if g.v > g.max {
		g.max = g.v
	}
	v := g.v
	g.mu.Unlock()
	return v
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// DurationCounter accumulates elapsed time atomically. The fan-out
// pipeline uses one per mirror link to expose cumulative stall time
// (wall clock spent blocked inside link submission).
type DurationCounter struct{ ns atomic.Int64 }

// Add accumulates d (negative values are ignored).
func (c *DurationCounter) Add(d time.Duration) {
	if d > 0 {
		c.ns.Add(int64(d))
	}
}

// Value returns the accumulated duration.
func (c *DurationCounter) Value() time.Duration {
	return time.Duration(c.ns.Load())
}

// Histogram accumulates durations. It retains raw samples (bounded by
// maxSamples with reservoir-free head retention plus reservoir-style
// statistics always exact for count/sum/min/max).
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	cap     int
}

// DefaultHistogramCap bounds retained samples per histogram.
const DefaultHistogramCap = 1 << 18

// NewHistogram returns a histogram retaining up to capSamples raw
// samples (0 uses DefaultHistogramCap).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = DefaultHistogramCap
	}
	return &Histogram{cap: capSamples, min: math.MaxInt64}
}

// Record adds one duration sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average of all samples (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0 < p <= 100) over retained
// samples, 0 when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Summary formats count/mean/p50/p95/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Max())
}

// Series bins (time, value) observations into fixed-width wall-clock
// bins relative to a start instant, averaging values per bin. Figure 9
// is a Series of update delays with 1-second bins.
type Series struct {
	mu    sync.Mutex
	start time.Time
	width time.Duration
	sums  []float64
	ns    []uint64
}

// NewSeries returns a series with the given bin width, starting at
// start.
func NewSeries(start time.Time, width time.Duration) *Series {
	if width <= 0 {
		width = time.Second
	}
	return &Series{start: start, width: width}
}

// Observe records value at instant at. Observations before start fall
// into bin 0.
func (s *Series) Observe(at time.Time, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bin := int(at.Sub(s.start) / s.width)
	if bin < 0 {
		bin = 0
	}
	for len(s.sums) <= bin {
		s.sums = append(s.sums, 0)
		s.ns = append(s.ns, 0)
	}
	s.sums[bin] += value
	s.ns[bin]++
}

// Bins returns the per-bin averages; empty bins are NaN.
func (s *Series) Bins() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.sums))
	for i := range out {
		if s.ns[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = s.sums[i] / float64(s.ns[i])
		}
	}
	return out
}

// Counts returns the number of observations per bin.
func (s *Series) Counts() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.ns))
	copy(out, s.ns)
	return out
}

// MaxBin returns the largest per-bin average, ignoring empty bins.
func (s *Series) MaxBin() float64 {
	var max float64
	for _, v := range s.Bins() {
		if !math.IsNaN(v) && v > max {
			max = v
		}
	}
	return max
}

// MeanOfBins returns the average over non-empty bins.
func (s *Series) MeanOfBins() float64 {
	var sum float64
	var n int
	for _, v := range s.Bins() {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
