// Package metrics provides the measurement primitives the experiment
// harness uses: counters, duration histograms with percentiles, and
// time-binned series (Figure 9 plots update delay against wall time).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge tracks an instantaneous level and its high-water mark. The
// fan-out pipeline uses one per mirror link to expose outbox depth, so
// both fields are atomics: Set sits on the per-link hot path and must
// not serialize against concurrent readers.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// raiseMax lifts the high-water mark to at least v. The CAS loop races
// only with other raisers, and each retry observes a strictly larger
// mark, so it terminates.
func (g *Gauge) raiseMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raiseMax(v)
}

// Add adjusts the level by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	g.raiseMax(v)
	return v
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// TakeMax returns the high-water mark accumulated since the previous
// TakeMax (or since creation) and resets the mark to the current
// level. Periodic telemetry uses it so each window reports its own
// peak instead of the all-time one. A Set racing the reset can at
// worst attribute its peak to the next window; the mark never drops
// below the live level for long because the reset re-raises it.
func (g *Gauge) TakeMax() int64 {
	m := g.max.Swap(g.v.Load())
	g.raiseMax(g.v.Load())
	return m
}

// DurationCounter accumulates elapsed time atomically. The fan-out
// pipeline uses one per mirror link to expose cumulative stall time
// (wall clock spent blocked inside link submission).
type DurationCounter struct{ ns atomic.Int64 }

// Add accumulates d (negative values are ignored).
func (c *DurationCounter) Add(d time.Duration) {
	if d > 0 {
		c.ns.Add(int64(d))
	}
}

// Value returns the accumulated duration.
func (c *DurationCounter) Value() time.Duration {
	return time.Duration(c.ns.Load())
}

// Histogram accumulates durations. Count, sum, min and max are always
// exact; percentiles come from retained raw samples, bounded by the
// configured cap. Past the cap, retention switches to uniform
// reservoir sampling (Vitter's Algorithm R), so percentiles stay
// unbiased over the whole run instead of describing only its head.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	// sorted marks samples as sorted; Record clears it and percentile
	// reads re-sort at most once per batch of mutations, instead of
	// copying and sorting the full slice on every call.
	sorted bool
	rng    uint64
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
	cap    int
}

// DefaultHistogramCap bounds retained samples per histogram.
const DefaultHistogramCap = 1 << 18

// NewHistogram returns a histogram retaining up to capSamples raw
// samples (0 uses DefaultHistogramCap).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = DefaultHistogramCap
	}
	return &Histogram{cap: capSamples, min: math.MaxInt64}
}

// Record adds one duration sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	// Reservoir step: keep the new sample with probability cap/count,
	// evicting a uniformly random retained one.
	if h.rng == 0 {
		h.rng = 0x9e3779b97f4a7c15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % h.count; j < uint64(len(h.samples)) {
		h.samples[j] = d
		h.sorted = false
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average of all samples (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Sum returns the total of all recorded durations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// sortLocked sorts the retained samples in place if a mutation dirtied
// them. Caller holds h.mu.
func (h *Histogram) sortLocked() {
	if h.sorted {
		return
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	h.sorted = true
}

// percentileLocked is the nearest-rank percentile over the (sorted)
// retained samples. Caller holds h.mu and has called sortLocked.
func (h *Histogram) percentileLocked(p float64) time.Duration {
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Percentile returns the p-th percentile (0 < p <= 100) over retained
// samples, 0 when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.percentileLocked(p)
}

// Quantiles returns the requested percentiles in one pass — a single
// lock acquisition and at most one sort (all zeros when empty).
func (h *Histogram) Quantiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return out
	}
	h.sortLocked()
	for i, p := range ps {
		out[i] = h.percentileLocked(p)
	}
	return out
}

// Summary formats count/mean/p50/p95/max on one line.
func (h *Histogram) Summary() string {
	h.mu.Lock()
	count, sum, max := h.count, h.sum, h.max
	var p50, p95 time.Duration
	if len(h.samples) > 0 {
		h.sortLocked()
		p50, p95 = h.percentileLocked(50), h.percentileLocked(95)
	}
	h.mu.Unlock()
	mean := time.Duration(0)
	if count > 0 {
		mean = sum / time.Duration(count)
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v", count, mean, p50, p95, max)
}

// Series bins (time, value) observations into fixed-width wall-clock
// bins relative to a start instant, averaging values per bin. Figure 9
// is a Series of update delays with 1-second bins.
type Series struct {
	mu    sync.Mutex
	start time.Time
	width time.Duration
	sums  []float64
	ns    []uint64
}

// NewSeries returns a series with the given bin width, starting at
// start.
func NewSeries(start time.Time, width time.Duration) *Series {
	if width <= 0 {
		width = time.Second
	}
	return &Series{start: start, width: width}
}

// Observe records value at instant at. Observations before start fall
// into bin 0.
func (s *Series) Observe(at time.Time, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bin := int(at.Sub(s.start) / s.width)
	if bin < 0 {
		bin = 0
	}
	for len(s.sums) <= bin {
		s.sums = append(s.sums, 0)
		s.ns = append(s.ns, 0)
	}
	s.sums[bin] += value
	s.ns[bin]++
}

// Bins returns the per-bin averages; empty bins are NaN.
func (s *Series) Bins() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.sums))
	for i := range out {
		if s.ns[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = s.sums[i] / float64(s.ns[i])
		}
	}
	return out
}

// Counts returns the number of observations per bin.
func (s *Series) Counts() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.ns))
	copy(out, s.ns)
	return out
}

// MaxBin returns the largest per-bin average, ignoring empty bins.
func (s *Series) MaxBin() float64 {
	var max float64
	for _, v := range s.Bins() {
		if !math.IsNaN(v) && v > max {
			max = v
		}
	}
	return max
}

// MeanOfBins returns the average over non-empty bins.
func (s *Series) MeanOfBins() float64 {
	var sum float64
	var n int
	for _, v := range s.Bins() {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
