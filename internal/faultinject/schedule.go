package faultinject

import (
	"fmt"
	"math/rand"
)

// Schedule is one chaos run's fault plan, derived deterministically
// from a seed: which mirror crashes and when, which mirror runs slow,
// and what probabilistic faults the control links suffer. Positions
// are expressed as fractions of the event stream (and protocol
// rounds), never wall time, so the same seed yields the same schedule
// at any machine speed.
type Schedule struct {
	// Seed reproduces the schedule (and the per-link decision streams
	// of a Plane built with it).
	Seed int64

	// CrashMirror is the index of the mirror that crash-restarts.
	CrashMirror int
	// CrashAfterFrac is the fraction of the event stream fed before
	// the crash (its links partition and its volatile state is lost).
	CrashAfterFrac float64
	// DownFrac is the fraction of the event stream fed while the
	// mirror is down, after its exclusion from the quorum and before
	// its recovery + rejoin.
	DownFrac float64

	// SlowMirror is the index of a mirror whose CPU is skewed slower
	// for the run, or -1. It is always distinct from CrashMirror.
	SlowMirror int
	// SlowFactor multiplies the slow mirror's control-handling cost
	// (the paper's "slow mirror site" disturbance).
	SlowFactor int

	// CtrlFaults are the probabilistic faults applied to every
	// control link (both directions). Data links get none of these:
	// the framework assumes ordered exactly-once data delivery to
	// live mirrors, so data links only crash or partition.
	CtrlFaults Faults

	// CrashCentral selects the central-crash schedule class: the
	// central site (not a mirror) dies at CrashAfterFrac and the
	// standby mirror is promoted in its place. CrashMirror is -1 and
	// DownFrac is 0 in this class — the old central never returns.
	CrashCentral bool
}

// NewSchedule derives the fault plan for a cluster of the given mirror
// count. Every field is a pure function of (seed, mirrors).
func NewSchedule(seed int64, mirrors int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{
		Seed:           seed,
		CrashMirror:    rng.Intn(mirrors),
		CrashAfterFrac: 0.15 + 0.35*rng.Float64(), // crash in the first half
		DownFrac:       0.10 + 0.25*rng.Float64(), // stay down a while, rejoin with stream left
		SlowMirror:     -1,
		CtrlFaults: Faults{
			Drop:      0.10 * rng.Float64(),
			Duplicate: 0.10 * rng.Float64(),
			Reorder:   0.10 * rng.Float64(),
			Corrupt:   0.05 * rng.Float64(),
		},
	}
	if mirrors > 1 && rng.Float64() < 0.5 {
		slow := rng.Intn(mirrors - 1)
		if slow >= s.CrashMirror {
			slow++
		}
		s.SlowMirror = slow
		s.SlowFactor = 2 + rng.Intn(7)
	}
	return s
}

// NewCentralCrashSchedule derives a fault plan in which the central
// site itself dies and the standby mirror takes over. It draws from
// its own rng stream (independent of NewSchedule, whose seeded draws
// are pinned by the deterministic-replay tests): the crash lands past
// the first quarter of the stream so at least one checkpoint round
// commits before failover, control faults are kept milder than the
// mirror-crash class (the detection path itself rides control links),
// and no mirror crashes — the only site that dies is the central.
func NewCentralCrashSchedule(seed int64, mirrors int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{
		Seed:           seed,
		CrashCentral:   true,
		CrashMirror:    -1,
		CrashAfterFrac: 0.25 + 0.40*rng.Float64(), // past the first commit, stream left to replay
		SlowMirror:     -1,
		CtrlFaults: Faults{
			Drop:      0.08 * rng.Float64(),
			Duplicate: 0.08 * rng.Float64(),
			Reorder:   0.08 * rng.Float64(),
			Corrupt:   0.04 * rng.Float64(),
		},
	}
	if mirrors > 1 && rng.Float64() < 0.5 {
		// Never slow mirror 0: it is the promotion candidate, and a
		// slow standby would stretch detection, not test anything new.
		s.SlowMirror = 1 + rng.Intn(mirrors-1)
		s.SlowFactor = 2 + rng.Intn(7)
	}
	return s
}

// String renders the schedule for failure reports and the fault
// matrix.
func (s Schedule) String() string {
	slow := "none"
	if s.SlowMirror >= 0 {
		slow = fmt.Sprintf("mirror%d x%d", s.SlowMirror, s.SlowFactor)
	}
	if s.CrashCentral {
		return fmt.Sprintf(
			"seed=%d crash=central@%.0f%% slow=%s ctrl{drop=%.3f dup=%.3f reorder=%.3f corrupt=%.3f}",
			s.Seed, 100*s.CrashAfterFrac, slow,
			s.CtrlFaults.Drop, s.CtrlFaults.Duplicate, s.CtrlFaults.Reorder, s.CtrlFaults.Corrupt)
	}
	return fmt.Sprintf(
		"seed=%d crash=mirror%d@%.0f%% down=%.0f%% slow=%s ctrl{drop=%.3f dup=%.3f reorder=%.3f corrupt=%.3f}",
		s.Seed, s.CrashMirror, 100*s.CrashAfterFrac, 100*s.DownFrac, slow,
		s.CtrlFaults.Drop, s.CtrlFaults.Duplicate, s.CtrlFaults.Reorder, s.CtrlFaults.Corrupt)
}
