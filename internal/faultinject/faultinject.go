// Package faultinject is a seeded, deterministic fault plane for the
// mirroring framework's link layer. It wraps any outbound link — the
// in-process channel links, echo.SendLink over TCP, or the direct
// handler links the test rigs use — with composable message faults
// (drop, duplicate, reorder, payload corruption) plus a runtime
// partition switch, all driven by a single seed so every run is
// replayable: the fault decision for the N-th submission on a link is
// a pure function of (seed, link name, N).
//
// The plane sits between a site's sending path and the transport, the
// same place simnet's bandwidth/latency shaping lives, but below the
// framework's reliability assumptions: the paper's protocol tolerates
// arbitrary loss and reordering of *control* traffic (no timeouts, no
// aborts, later commits subsume earlier ones) while the *data* path
// assumes ordered exactly-once delivery between central and each live
// mirror. Chaos schedules therefore apply probabilistic faults to
// control links and whole-link faults (partition, crash-restart) to
// data links; see internal/cluster's chaos harness.
package faultinject

import (
	"math/rand"
	"sync"

	"adaptmirror/internal/event"
	"adaptmirror/internal/metrics"
	"adaptmirror/internal/obs"
)

// Sender matches core.Sender structurally (avoiding the dependency):
// the minimal outbound link interface.
type Sender interface {
	Submit(*event.Event) error
}

// BatchSender matches core.BatchSender: links that frame whole
// batches. A wrapped Link always implements it so the fan-out's batch
// path survives wrapping; when the underlying link does not, the batch
// degrades to per-event submission.
type BatchSender interface {
	Sender
	SubmitBatch([]*event.Event) error
}

// Faults are per-submission fault probabilities for one link. Classes
// compose: each submission draws for every class independently, in a
// fixed order (drop, reorder, duplicate, corrupt), so a link can be
// simultaneously lossy and scrambled. Zero value = fault-free.
type Faults struct {
	// Drop is the probability a submission is silently discarded.
	Drop float64
	// Duplicate is the probability a submission is delivered twice.
	Duplicate float64
	// Reorder is the probability a submission is held back one slot
	// and delivered after the following submission (pairwise swap —
	// the minimal reordering a non-FIFO network exhibits).
	Reorder float64
	// Corrupt is the probability a submission's payload has one byte
	// bit-flipped (a cloned copy is corrupted; the caller's event is
	// never mutated). Events without payload pass through unharmed.
	Corrupt float64
}

// Plane owns the wrapped links of one cluster and derives each link's
// deterministic decision stream from the plane seed and the link name.
type Plane struct {
	seed int64
	reg  *obs.Registry

	mu    sync.Mutex
	links map[string]*Link
}

// NewPlane returns a fault plane. reg, when non-nil, receives
// fault_injected_total counters labeled by link and fault class.
func NewPlane(seed int64, reg *obs.Registry) *Plane {
	if reg != nil {
		reg.Describe("fault_injected_total", "Faults injected by the fault plane, by link and class.")
	}
	return &Plane{seed: seed, reg: reg, links: make(map[string]*Link)}
}

// Seed returns the plane's seed (printed by failing chaos runs for
// one-command replay).
func (p *Plane) Seed() int64 { return p.seed }

// fnv64a hashes a link name for seed derivation.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 finalizes the combined seed so structurally similar link
// names still get uncorrelated decision streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Wrap returns a fault-injecting link in front of next. The name keys
// the link's decision stream (and its metrics labels), so wrapping the
// same topology with the same plane seed reproduces the same faults
// regardless of goroutine interleaving elsewhere. Wrapping the same
// name twice returns the same Link.
func (p *Plane) Wrap(name string, next Sender, f Faults) *Link {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.links[name]; ok {
		return l
	}
	l := &Link{
		name:   name,
		next:   next,
		batch:  asBatch(next),
		faults: f,
		rng:    rand.New(rand.NewSource(int64(splitmix64(uint64(p.seed) ^ fnv64a(name))))),
	}
	link := obs.L("link", name)
	l.dropped = p.reg.Counter("fault_injected_total", link, obs.L("class", "drop"))
	l.duplicated = p.reg.Counter("fault_injected_total", link, obs.L("class", "duplicate"))
	l.reordered = p.reg.Counter("fault_injected_total", link, obs.L("class", "reorder"))
	l.corrupted = p.reg.Counter("fault_injected_total", link, obs.L("class", "corrupt"))
	l.partitioned = p.reg.Counter("fault_injected_total", link, obs.L("class", "partition"))
	p.links[name] = l
	return l
}

// Link reports the wrapped link registered under name, or nil.
func (p *Plane) Link(name string) *Link {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.links[name]
}

// asBatch mirrors core.AsBatchSender without the import.
func asBatch(s Sender) BatchSender {
	if bs, ok := s.(BatchSender); ok {
		return bs
	}
	return eachBatch{s}
}

type eachBatch struct{ Sender }

func (a eachBatch) SubmitBatch(events []*event.Event) error {
	for _, e := range events {
		if err := a.Sender.Submit(e); err != nil {
			return err
		}
	}
	return nil
}

// Link is one fault-injecting wrapper. Fault decisions are drawn under
// the link mutex in submission order, so the decision stream is
// deterministic for a deterministic submission sequence (the central
// sending path is single-writer per link, which gives exactly that).
type Link struct {
	name   string
	next   Sender
	batch  BatchSender
	faults Faults

	mu   sync.Mutex
	rng  *rand.Rand
	down bool
	held *event.Event // one-slot reorder holdback

	dropped     *metrics.Counter
	duplicated  *metrics.Counter
	reordered   *metrics.Counter
	corrupted   *metrics.Counter
	partitioned *metrics.Counter
}

// Name returns the link's registered name.
func (l *Link) Name() string { return l.name }

// Injected reports the total fault count across every class this link
// has injected so far (drops while partitioned included).
func (l *Link) Injected() uint64 {
	return l.dropped.Value() + l.duplicated.Value() + l.reordered.Value() +
		l.corrupted.Value() + l.partitioned.Value()
}

// SetDown opens (true) or heals (false) a partition: while down, every
// submission is swallowed — the transport analogue of a stalled or
// severed connection, from the sender's perspective a silent loss.
// Healing does not replay; whatever was submitted while down is gone,
// exactly like a crashed mirror's volatile queues.
func (l *Link) SetDown(down bool) {
	l.mu.Lock()
	l.down = down
	if down {
		l.held = nil
	}
	l.mu.Unlock()
}

// Down reports the partition state.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// plan is the decision for one submission: the events to put on the
// wire, in order (nil = swallowed).
func (l *Link) plan(e *event.Event, out []*event.Event) []*event.Event {
	if l.down {
		l.partitioned.Add(1)
		return out
	}
	f := l.faults
	// Fixed draw order keeps the stream deterministic even when some
	// probabilities are zero: every class always consumes its draw.
	dropped := l.rng.Float64() < f.Drop
	reorder := l.rng.Float64() < f.Reorder
	duplicate := l.rng.Float64() < f.Duplicate
	corrupt := l.rng.Float64() < f.Corrupt
	if dropped {
		l.dropped.Add(1)
		return out
	}
	if corrupt && len(e.Payload) > 0 {
		c := e.Clone()
		// Flip one bit of one payload byte. Framing and timestamps are
		// left alone — wire-level corruption of those is the codec
		// fuzzers' domain; the plane models application-payload damage
		// the codec cannot detect.
		i := l.rng.Intn(len(c.Payload))
		c.Payload[i] ^= 1 << uint(l.rng.Intn(8))
		l.corrupted.Add(1)
		e = c
	}
	emit := func(e *event.Event) {
		out = append(out, e)
		if duplicate {
			l.duplicated.Add(1)
			out = append(out, e)
			duplicate = false
		}
	}
	if held := l.held; held != nil {
		l.held = nil
		if reorder {
			// Two consecutive holds: deliver the new event first, keep
			// the swap depth at one.
			l.reordered.Add(1)
			emit(e)
			out = append(out, held)
			return out
		}
		emit(e)
		out = append(out, held)
		return out
	}
	if reorder {
		// A held event's duplicate draw is discarded: the swap is the
		// observable fault for this submission, and keeping the
		// holdback to a single event keeps planning deterministic.
		l.reordered.Add(1)
		l.held = e
		return out
	}
	emit(e)
	return out
}

// Submit implements Sender with the link's fault schedule applied.
func (l *Link) Submit(e *event.Event) error {
	l.mu.Lock()
	out := l.plan(e, nil)
	l.mu.Unlock()
	for _, e := range out {
		if err := l.next.Submit(e); err != nil {
			return err
		}
	}
	return nil
}

// SubmitBatch implements BatchSender: per-event decisions, one framed
// downstream submission for the survivors.
func (l *Link) SubmitBatch(events []*event.Event) error {
	l.mu.Lock()
	out := make([]*event.Event, 0, len(events)+1)
	for _, e := range events {
		out = l.plan(e, out)
	}
	l.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	return l.batch.SubmitBatch(out)
}

// ownedSender matches core.OwnedBatchSender structurally: zero-copy
// batch submission under a borrow-during-call reference.
type ownedSender interface {
	SubmitOwned(events []*event.Event, ref event.Ref) error
}

// SubmitOwned applies the link's fault schedule to an owned batch and
// passes the survivors (and the guarding reference) downstream when
// the next hop speaks the zero-copy protocol. When it does not — or
// when a reorder fault holds one of the batch's views back past this
// call — a permanent reference is taken so the slab is surrendered to
// the garbage collector instead of being recycled under a retained
// view. The decision stream is identical to SubmitBatch's.
func (l *Link) SubmitOwned(events []*event.Event, ref event.Ref) error {
	l.mu.Lock()
	heldBefore := l.held
	out := make([]*event.Event, 0, len(events)+1)
	for _, e := range events {
		out = l.plan(e, out)
	}
	holdsView := l.held != nil && l.held != heldBefore
	l.mu.Unlock()
	if holdsView && ref != nil {
		ref.Retain()
		ref = nil // the leak already guards every view of this batch
	}
	if len(out) == 0 {
		return nil
	}
	if o, ok := l.next.(ownedSender); ok && ref != nil {
		return o.SubmitOwned(out, ref)
	}
	if ref != nil {
		ref.Retain()
	}
	return l.batch.SubmitBatch(out)
}

// Flush releases a pending reorder holdback (end of a schedule, before
// drain barriers). Without it the last submission of a run could stay
// held forever.
func (l *Link) Flush() error {
	l.mu.Lock()
	held := l.held
	l.held = nil
	l.mu.Unlock()
	if held == nil {
		return nil
	}
	return l.next.Submit(held)
}
