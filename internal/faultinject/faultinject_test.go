package faultinject

import (
	"bytes"
	"testing"

	"adaptmirror/internal/event"
	"adaptmirror/internal/obs"
)

// recorder collects delivered events.
type recorder struct {
	got []*event.Event
}

func (r *recorder) Submit(e *event.Event) error {
	r.got = append(r.got, e)
	return nil
}

func mkEvents(n int) []*event.Event {
	out := make([]*event.Event, n)
	for i := range out {
		out[i] = &event.Event{
			Type:    event.TypeFAAPosition,
			Seq:     uint64(i + 1),
			Payload: []byte{byte(i), byte(i >> 8), 0xAA, 0x55},
		}
	}
	return out
}

// deliverySignature runs n events through a freshly wrapped link and
// returns the delivered Seq sequence.
func deliverySignature(seed int64, f Faults, n int) []uint64 {
	rec := &recorder{}
	l := NewPlane(seed, nil).Wrap("sig", rec, f)
	for _, e := range mkEvents(n) {
		if err := l.Submit(e); err != nil {
			panic(err)
		}
	}
	if err := l.Flush(); err != nil {
		panic(err)
	}
	sig := make([]uint64, len(rec.got))
	for i, e := range rec.got {
		sig[i] = e.Seq
	}
	return sig
}

func TestSameSeedSameDecisions(t *testing.T) {
	f := Faults{Drop: 0.2, Duplicate: 0.15, Reorder: 0.2, Corrupt: 0.1}
	a := deliverySignature(42, f, 500)
	b := deliverySignature(42, f, 500)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision streams diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	f := Faults{Drop: 0.2, Duplicate: 0.15, Reorder: 0.2, Corrupt: 0.1}
	a := deliverySignature(1, f, 500)
	b := deliverySignature(2, f, 500)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical decision streams")
		}
	}
}

func TestLinkNamesGetIndependentStreams(t *testing.T) {
	f := Faults{Drop: 0.5}
	p := NewPlane(7, nil)
	ra, rb := &recorder{}, &recorder{}
	la := p.Wrap("a", ra, f)
	lb := p.Wrap("b", rb, f)
	for _, e := range mkEvents(200) {
		_ = la.Submit(e)
		_ = lb.Submit(e)
	}
	if len(ra.got) == len(rb.got) {
		same := true
		for i := range ra.got {
			if ra.got[i].Seq != rb.got[i].Seq {
				same = false
				break
			}
		}
		if same {
			t.Fatal("links a and b drew identical decision streams")
		}
	}
}

func TestFaultFreePassThrough(t *testing.T) {
	rec := &recorder{}
	l := NewPlane(1, nil).Wrap("clean", rec, Faults{})
	events := mkEvents(100)
	for _, e := range events {
		if err := l.Submit(e); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.got) != 100 {
		t.Fatalf("delivered %d, want 100", len(rec.got))
	}
	for i, e := range rec.got {
		if e != events[i] {
			t.Fatalf("event %d was copied or reordered", i)
		}
	}
}

func TestDropRate(t *testing.T) {
	rec := &recorder{}
	l := NewPlane(3, nil).Wrap("lossy", rec, Faults{Drop: 0.3})
	for _, e := range mkEvents(2000) {
		_ = l.Submit(e)
	}
	if n := len(rec.got); n < 1200 || n > 1600 {
		t.Fatalf("delivered %d of 2000 at drop=0.3", n)
	}
}

func TestCorruptClonesPayload(t *testing.T) {
	rec := &recorder{}
	l := NewPlane(5, nil).Wrap("noisy", rec, Faults{Corrupt: 1})
	orig := &event.Event{Type: event.TypeFAAPosition, Seq: 1, Payload: []byte{1, 2, 3, 4}}
	keep := append([]byte(nil), orig.Payload...)
	if err := l.Submit(orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Payload, keep) {
		t.Fatal("corruption mutated the caller's event")
	}
	if len(rec.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(rec.got))
	}
	if bytes.Equal(rec.got[0].Payload, keep) {
		t.Fatal("payload not corrupted at probability 1")
	}
	diff := 0
	for i := range keep {
		diff += popcount(keep[i] ^ rec.got[0].Payload[i])
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestReorderSwapsAdjacent(t *testing.T) {
	rec := &recorder{}
	l := NewPlane(9, nil).Wrap("scrambled", rec, Faults{Reorder: 1})
	events := mkEvents(4)
	for _, e := range events {
		_ = l.Submit(e)
	}
	_ = l.Flush()
	// With reorder=1 every submission holds, releasing the previous:
	// 1 held; 2 delivered, 1 released ... final flush releases last.
	if len(rec.got) != 4 {
		t.Fatalf("delivered %d of 4", len(rec.got))
	}
	want := []uint64{2, 1, 4, 3}
	for i, e := range rec.got {
		if e.Seq != want[i] {
			got := make([]uint64, len(rec.got))
			for j, g := range rec.got {
				got[j] = g.Seq
			}
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	rec := &recorder{}
	l := NewPlane(11, nil).Wrap("dup", rec, Faults{Duplicate: 1})
	_ = l.Submit(mkEvents(1)[0])
	if len(rec.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(rec.got))
	}
	if rec.got[0].Seq != rec.got[1].Seq {
		t.Fatal("duplicate has different identity")
	}
}

func TestPartitionSwallowsAndHeals(t *testing.T) {
	rec := &recorder{}
	l := NewPlane(13, nil).Wrap("part", rec, Faults{})
	events := mkEvents(30)
	for _, e := range events[:10] {
		_ = l.Submit(e)
	}
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	for _, e := range events[10:20] {
		_ = l.Submit(e)
	}
	l.SetDown(false)
	for _, e := range events[20:] {
		_ = l.Submit(e)
	}
	if len(rec.got) != 20 {
		t.Fatalf("delivered %d, want 20 (10 swallowed)", len(rec.got))
	}
	if rec.got[10].Seq != 21 {
		t.Fatalf("first post-heal event Seq = %d, want 21", rec.got[10].Seq)
	}
}

func TestBatchPathMatchesFaults(t *testing.T) {
	rec := &recorder{}
	l := NewPlane(17, nil).Wrap("batch", rec, Faults{Drop: 0.5})
	if err := l.SubmitBatch(mkEvents(1000)); err != nil {
		t.Fatal(err)
	}
	if n := len(rec.got); n < 380 || n > 620 {
		t.Fatalf("batch delivered %d of 1000 at drop=0.5", n)
	}
}

func TestCountersTrackInjections(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPlane(19, reg)
	rec := &recorder{}
	l := p.Wrap("ctr", rec, Faults{Drop: 1})
	for _, e := range mkEvents(25) {
		_ = l.Submit(e)
	}
	if len(rec.got) != 0 {
		t.Fatalf("delivered %d with drop=1", len(rec.got))
	}
	if got := l.dropped.Value(); got != 25 {
		t.Fatalf("drop counter = %d, want 25", got)
	}
	l.SetDown(true)
	for _, e := range mkEvents(5) {
		_ = l.Submit(e)
	}
	if got := l.partitioned.Value(); got != 5 {
		t.Fatalf("partition counter = %d, want 5", got)
	}
}

func TestWrapSameNameReturnsSameLink(t *testing.T) {
	p := NewPlane(23, nil)
	rec := &recorder{}
	a := p.Wrap("x", rec, Faults{})
	b := p.Wrap("x", rec, Faults{})
	if a != b {
		t.Fatal("Wrap minted a second link for the same name")
	}
	if p.Link("x") != a {
		t.Fatal("Link lookup missed")
	}
	if p.Link("y") != nil {
		t.Fatal("Link returned a link never wrapped")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := NewSchedule(seed, 4)
		b := NewSchedule(seed, 4)
		if a != b {
			t.Fatalf("seed %d: schedules differ: %v vs %v", seed, a, b)
		}
		if a.CrashMirror < 0 || a.CrashMirror >= 4 {
			t.Fatalf("seed %d: crash mirror %d out of range", seed, a.CrashMirror)
		}
		if a.SlowMirror == a.CrashMirror {
			t.Fatalf("seed %d: slow mirror equals crash mirror", seed)
		}
		if a.CrashAfterFrac <= 0 || a.CrashAfterFrac >= 1 || a.DownFrac <= 0 || a.CrashAfterFrac+a.DownFrac >= 1 {
			t.Fatalf("seed %d: fractions out of range: %v", seed, a)
		}
	}
	if NewSchedule(1, 4) == NewSchedule(2, 4) {
		t.Fatal("seeds 1 and 2 produced the same schedule")
	}
}
