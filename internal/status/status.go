// Package status assembles the cluster-status document served from the
// /cluster/status control API (cf. ipfs-cluster's REST status and
// TerraServer's operations experience: a production cluster needs one
// aggregated, queryable view of per-link and per-site health). The
// central site builds the full ClusterStatus — its own regime and
// monitored variables, per-link wire telemetry, per-site regime and
// sample rows, rejoin-transfer accounting, checkpoint cut progress, and
// the tail of the adaptation audit log; mirror sites build a local
// document covering their applier state and monitored variables.
package status

import (
	"time"

	"adaptmirror/internal/adapt"
	"adaptmirror/internal/checkpoint"
	"adaptmirror/internal/core"
	"adaptmirror/internal/obs"
)

// Regime describes the mirroring regime installed at a site.
type Regime struct {
	ID   uint8  `json:"id"`
	Name string `json:"name,omitempty"`
	// FieldDeltas reports whether the regime ships field-level state
	// deltas in place of raw data events.
	FieldDeltas bool `json:"field_deltas"`
	// Engaged is true while the adaptation controller has a degraded
	// regime installed (central document only).
	Engaged bool `json:"engaged,omitempty"`
	// DirectiveRound is the checkpoint round that carried the
	// currently installed directive (0 before the first one).
	DirectiveRound uint64 `json:"directive_round"`
}

// Sample mirrors core.Sample for JSON.
type Sample struct {
	Ready     int `json:"ready"`
	Backup    int `json:"backup"`
	Pending   int `json:"pending"`
	WireBytes int `json:"wire_bytes"`
	Outbox    int `json:"outbox"`
	ApplyLag  int `json:"apply_lag"`
}

// FromSample converts a core.Sample.
func FromSample(s core.Sample) Sample {
	return Sample{
		Ready:     s.Ready,
		Backup:    s.Backup,
		Pending:   s.Pending,
		WireBytes: s.WireBytes,
		Outbox:    s.Outbox,
		ApplyLag:  s.ApplyLag,
	}
}

// Checkpoint reports checkpoint-protocol progress.
type Checkpoint struct {
	Rounds  uint64 `json:"rounds"`
	Commits uint64 `json:"commits"`
	// Cut is the last committed checkpoint cut (per-stream virtual
	// timestamps; null before the first commit).
	Cut []uint64 `json:"cut,omitempty"`
}

// Link is one mirror link's cumulative counters plus smoothed wire
// telemetry.
type Link struct {
	Mirror    int     `json:"mirror"`
	Enqueued  uint64  `json:"enqueued"`
	Sent      uint64  `json:"sent"`
	SentBytes uint64  `json:"sent_bytes"`
	Filtered  uint64  `json:"filtered"`
	Dropped   uint64  `json:"dropped"`
	Depth     int     `json:"depth"`
	StallMs   float64 `json:"stall_ms"`
	// Telemetry (EWMA, checkpoint-round granularity).
	BytesPerRound  float64 `json:"bytes_per_round"`
	EventsPerRound float64 `json:"events_per_round"`
	MaxDepthWindow int     `json:"max_depth_window"`
	BandwidthBps   float64 `json:"est_bandwidth_bps"`
}

// Site is one per-site row in the central document: the regime the
// controller last saw installed there and the site's latest piggybacked
// sample.
type Site struct {
	Site           string `json:"site"`
	RegimeID       uint8  `json:"regime_id"`
	DirectiveRound uint64 `json:"directive_round"`
	Sample         Sample `json:"sample"`
}

// Rejoin reports recovery-transfer accounting by mode.
type Rejoin struct {
	Snapshots     uint64 `json:"snapshots"`
	Deltas        uint64 `json:"deltas"`
	SnapshotBytes uint64 `json:"snapshot_bytes"`
	DeltaBytes    uint64 `json:"delta_bytes"`
}

// Takeover is the wire-takeover runtime's view on a deployed mirrord
// site: armed detection, the current role in the takeover protocol,
// and the election/redial counters. Absent when the runtime is not
// armed (in-process clusters, plain mirrors without a peer manifest).
type Takeover struct {
	// Armed reports a live missed-round detector.
	Armed bool `json:"armed"`
	// Role is this site's current takeover role: "standby" or
	// "follower" while the central is presumed alive, "candidate"
	// during an election, "promoted" after adopting the central role.
	Role string `json:"role"`
	// Budget is the missed detection intervals tolerated before the
	// site declares the central dead.
	Budget int `json:"budget"`
	// Missed is the current consecutive-miss streak.
	Missed int `json:"missed"`
	// Fired reports whether this site has declared the central dead.
	Fired bool `json:"fired"`
	// Epoch is the highest takeover epoch this site accepted or
	// claimed (0 before any takeover).
	Epoch uint64 `json:"epoch"`
	// CentralAddr is the ctrl.up address this site currently targets
	// (the promoted address after a repoint).
	CentralAddr string `json:"central_addr,omitempty"`
	// Claims and Repoints mirror the election_claims_total and
	// uplink_repoint_total counters.
	Claims   uint64 `json:"claims"`
	Repoints uint64 `json:"repoints"`
}

// Document is the /cluster/status payload. Mirror sites fill the
// site-local fields only; the central site additionally aggregates
// links, per-site rows, rejoin accounting, and the audit tail.
type Document struct {
	Site   string    `json:"site"`
	Role   string    `json:"role"` // "central" or "mirror"
	At     time.Time `json:"at"`
	Regime Regime    `json:"regime"`
	Sample Sample    `json:"sample"`
	// CentralEpoch is the promotion epoch the cluster runs in: 0 under
	// the original central, n after the nth warm-standby promotion. A
	// mirror derives it from its observed round watermark (rounds are
	// partitioned by epoch), so a mirror document disagreeing with the
	// central's is a mirror that has not yet heard from the promoted
	// central.
	CentralEpoch uint64 `json:"central_epoch"`

	Checkpoint *Checkpoint      `json:"checkpoint,omitempty"`
	Links      []Link           `json:"links,omitempty"`
	Sites      []Site           `json:"sites,omitempty"`
	Rejoin     *Rejoin          `json:"rejoin,omitempty"`
	Audit      []obs.AuditEntry `json:"audit,omitempty"`
	// Takeover reports the deployed wire-takeover runtime, when armed
	// (cmd/mirrord fills it in on both mirror and promoted-central
	// documents).
	Takeover *Takeover `json:"takeover,omitempty"`
}

// DefaultAuditTail bounds the audit entries included in a central
// document.
const DefaultAuditTail = 32

// CentralSources names everything the central document draws from.
// Controller and Audit may be nil (non-adaptive clusters); SiteSamples,
// when non-nil, supplies a fresher per-site sample than the
// controller's last-observed table (keyed like adapt.SiteLabel inputs:
// adapt.SiteCentral or mirror indices).
type CentralSources struct {
	Site       string
	Central    *core.Central
	Controller *adapt.Controller
	Audit      *obs.AuditLog
	// AuditTail bounds the included audit entries (0 uses
	// DefaultAuditTail).
	AuditTail int
	// SiteRegimes, when non-nil, supplies per-site installed regime IDs
	// and directive rounds (from mirror appliers); sites absent from
	// the map fall back to the central directive round.
	SiteRegimes map[int]SiteRegime
}

// SiteRegime is one site's applier state as the central status
// aggregator sees it.
type SiteRegime struct {
	RegimeID       uint8
	DirectiveRound uint64
}

// Central builds the aggregated cluster-status document.
func Central(src CentralSources) Document {
	c := src.Central
	doc := Document{
		Site: src.Site,
		Role: "central",
		At:   time.Now(),
	}
	if doc.Site == "" {
		doc.Site = "central"
	}
	if c == nil {
		return doc
	}
	doc.Sample = FromSample(c.Sample())
	doc.CentralEpoch = c.Epoch()
	stats := c.Stats()
	ck := &Checkpoint{Rounds: stats.ChkptRounds, Commits: stats.ChkptCommits}
	if cut := c.CommittedCut(); cut != nil {
		ck.Cut = append([]uint64(nil), cut...)
	}
	doc.Checkpoint = ck
	rj := c.RejoinStats()
	doc.Rejoin = &Rejoin{
		Snapshots:     rj.Snapshots,
		Deltas:        rj.Deltas,
		SnapshotBytes: rj.SnapshotBytes,
		DeltaBytes:    rj.DeltaBytes,
	}

	directiveRound := c.LastDirectiveRound()
	doc.Regime = Regime{
		FieldDeltas:    c.FieldDeltas(),
		DirectiveRound: directiveRound,
	}
	if src.Controller != nil {
		cur := src.Controller.Current()
		doc.Regime.ID = cur.ID
		doc.Regime.Name = cur.Name
		doc.Regime.Engaged = src.Controller.Engaged()
	}

	links := c.LinkStats()
	telem := c.Telemetry()
	for i, ls := range links {
		l := Link{
			Mirror:    i,
			Enqueued:  ls.Enqueued,
			Sent:      ls.Sent,
			SentBytes: ls.SentBytes,
			Filtered:  ls.Filtered,
			Dropped:   ls.Dropped,
			Depth:     ls.Depth,
			StallMs:   float64(ls.Stall) / float64(time.Millisecond),
		}
		if i < len(telem) {
			t := telem[i]
			l.BytesPerRound = t.BytesPerRound
			l.EventsPerRound = t.EventsPerRound
			l.MaxDepthWindow = t.MaxDepth
			l.BandwidthBps = t.BandwidthBps
		}
		doc.Links = append(doc.Links, l)
	}

	if src.Controller != nil {
		samples := src.Controller.LastSamples()
		// Deterministic order: central first, then mirrors by index.
		if s, ok := samples[adapt.SiteCentral]; ok {
			doc.Sites = append(doc.Sites, Site{
				Site:           adapt.SiteLabel(adapt.SiteCentral),
				RegimeID:       doc.Regime.ID,
				DirectiveRound: directiveRound,
				Sample:         FromSample(s),
			})
		}
		for i := 0; i < len(links); i++ {
			s, ok := samples[i]
			if !ok {
				if _, have := src.SiteRegimes[i]; !have {
					continue
				}
			}
			row := Site{
				Site:           adapt.SiteLabel(i),
				RegimeID:       doc.Regime.ID,
				DirectiveRound: directiveRound,
				Sample:         FromSample(s),
			}
			if sr, have := src.SiteRegimes[i]; have {
				row.RegimeID = sr.RegimeID
				row.DirectiveRound = sr.DirectiveRound
			}
			doc.Sites = append(doc.Sites, row)
		}
	}

	if src.Audit != nil {
		tail := src.AuditTail
		if tail <= 0 {
			tail = DefaultAuditTail
		}
		entries := src.Audit.Entries()
		if len(entries) > tail {
			entries = entries[len(entries)-tail:]
		}
		doc.Audit = entries
	}
	return doc
}

// Mirror builds a mirror site's local status document from the site and
// its directive applier (ap may be nil).
func Mirror(site string, m *core.MirrorSite, ap *adapt.Applier) Document {
	doc := Document{
		Site: site,
		Role: "mirror",
		At:   time.Now(),
	}
	if m != nil {
		doc.Sample = FromSample(m.Sample())
		id, _, _ := m.Regime()
		doc.Regime.ID = id
		doc.CentralEpoch = m.LastRound() >> checkpoint.EpochShift
	}
	if ap != nil {
		if reg, round, ok := ap.Current(); ok {
			doc.Regime.ID = reg.ID
			doc.Regime.Name = reg.Name
			doc.Regime.FieldDeltas = reg.FieldDeltas
			doc.Regime.DirectiveRound = round
		}
	}
	return doc
}
