// Package delta synthesizes the airline-internal data stream of the
// paper's OIS: flight lifecycle status events (boarding, departed,
// landed, at runway, at gate) and gate-reader boarding events. The
// real stream is Delta Air Lines' proprietary operational feed; this
// generator reproduces its structure — per-flight monotone lifecycle
// transitions interleaved across flights, plus bursts of gate-reader
// events during boarding — deterministically from a seed.
//
// Despite the name, this package has nothing to do with state deltas:
// the per-flight field-level *state-delta* codec used by incremental
// rejoin and the field-delta mirroring regime lives in
// internal/statedelta.
package delta

import (
	"encoding/binary"
	"math/rand"

	"adaptmirror/internal/event"
)

// Config parameterizes a stream.
type Config struct {
	// Flights is the number of flights whose lifecycles are emitted.
	Flights int
	// Passengers is the number of gate-reader events per flight
	// during boarding.
	Passengers int
	// EventSize is the payload size of status events.
	EventSize int
	// Stream is the stream index stamped on events.
	Stream uint8
	// Seed makes interleaving reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Flights <= 0 {
		c.Flights = 1
	}
	if c.Passengers < 0 {
		c.Passengers = 0
	}
	return c
}

// lifecycle is the scripted status progression every flight follows.
var lifecycle = []event.Status{
	event.StatusScheduled,
	event.StatusBoarding,
	// gate-reader events are injected here
	event.StatusBoarded,
	event.StatusDeparted,
	event.StatusEnRoute,
	event.StatusLanded,
	event.StatusAtRunway,
	event.StatusAtGate,
}

// EventsPerFlight returns the number of events one flight contributes.
func (c Config) EventsPerFlight() int {
	c = c.withDefaults()
	return len(lifecycle) + c.Passengers
}

// Total returns the number of events the stream will produce.
func (c Config) Total() int {
	c = c.withDefaults()
	return c.Flights * c.EventsPerFlight()
}

type flightScript struct {
	id    event.FlightID
	stage int // index into lifecycle
	pax   int // gate-reader events still to emit
}

// Generator interleaves flight lifecycles pseudo-randomly.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	scripts []*flightScript
	seq     uint64
	left    int
}

// New returns a generator for cfg.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		left: cfg.Total(),
	}
	for i := 0; i < cfg.Flights; i++ {
		g.scripts = append(g.scripts, &flightScript{
			id:  event.FlightID(i + 1),
			pax: cfg.Passengers,
		})
	}
	return g
}

// Remaining returns how many events are left to generate.
func (g *Generator) Remaining() int { return g.left }

// Next returns the next event, or (nil, false) when exhausted.
func (g *Generator) Next() (*event.Event, bool) {
	for g.left > 0 {
		f := g.scripts[g.rng.Intn(len(g.scripts))]
		if f.stage >= len(lifecycle) {
			continue
		}
		g.left--
		g.seq++

		// Between 'boarding' and 'boarded', emit the flight's
		// gate-reader events.
		if lifecycle[f.stage] == event.StatusBoarded && f.pax > 0 {
			f.pax--
			return &event.Event{
				Type:      event.TypeGateReader,
				Flight:    f.id,
				Stream:    g.cfg.Stream,
				Seq:       g.seq,
				Coalesced: 1,
				Payload:   gatePayload(uint32(g.cfg.Passengers), g.cfg.EventSize),
			}, true
		}

		st := lifecycle[f.stage]
		f.stage++
		e := event.NewStatus(f.id, g.seq, st, g.cfg.EventSize)
		e.Stream = g.cfg.Stream
		return e, true
	}
	return nil, false
}

func gatePayload(expected uint32, size int) []byte {
	if size < 4 {
		size = 4
	}
	p := make([]byte, size)
	binary.LittleEndian.PutUint32(p, expected)
	return p
}

// All drains the generator into a slice.
func (g *Generator) All() []*event.Event {
	out := make([]*event.Event, 0, g.left)
	for {
		e, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
