package delta

import (
	"testing"

	"adaptmirror/internal/event"
)

func TestTotalCount(t *testing.T) {
	cfg := Config{Flights: 3, Passengers: 5, Seed: 1}
	if cfg.EventsPerFlight() != 13 { // 8 lifecycle + 5 pax
		t.Fatalf("EventsPerFlight = %d, want 13", cfg.EventsPerFlight())
	}
	events := New(cfg).All()
	if len(events) != 39 {
		t.Fatalf("generated %d, want 39", len(events))
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Flights: 4, Passengers: 3, Seed: 77}
	a, b := New(cfg).All(), New(cfg).All()
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Flight != b[i].Flight || a[i].Status != b[i].Status {
			t.Fatalf("event %d differs between same-seed runs", i)
		}
	}
}

func TestPerFlightLifecycleOrder(t *testing.T) {
	events := New(Config{Flights: 5, Passengers: 4, Seed: 2}).All()
	perFlight := map[event.FlightID][]*event.Event{}
	for _, e := range events {
		perFlight[e.Flight] = append(perFlight[e.Flight], e)
	}
	if len(perFlight) != 5 {
		t.Fatalf("flights = %d, want 5", len(perFlight))
	}
	for f, evs := range perFlight {
		lastStatus := event.StatusUnknown
		gateSeen := 0
		var boardingSeen, boardedSeen bool
		for _, e := range evs {
			switch e.Type {
			case event.TypeDeltaStatus:
				if e.Status <= lastStatus {
					t.Fatalf("flight %d: status regressed %s -> %s", f, lastStatus, e.Status)
				}
				lastStatus = e.Status
				if e.Status == event.StatusBoarding {
					boardingSeen = true
				}
				if e.Status == event.StatusBoarded {
					boardedSeen = true
					if gateSeen != 4 {
						t.Fatalf("flight %d: boarded after %d gate events, want 4", f, gateSeen)
					}
				}
			case event.TypeGateReader:
				if !boardingSeen || boardedSeen {
					t.Fatalf("flight %d: gate-reader event outside boarding window", f)
				}
				gateSeen++
			default:
				t.Fatalf("unexpected type %s", e.Type)
			}
		}
		if lastStatus != event.StatusAtGate {
			t.Fatalf("flight %d: lifecycle ended at %s", f, lastStatus)
		}
	}
}

func TestGatePayloadCarriesExpectedCount(t *testing.T) {
	events := New(Config{Flights: 1, Passengers: 7, Seed: 3}).All()
	for _, e := range events {
		if e.Type != event.TypeGateReader {
			continue
		}
		if len(e.Payload) < 4 {
			t.Fatal("gate payload too short")
		}
		got := uint32(e.Payload[0]) | uint32(e.Payload[1])<<8 | uint32(e.Payload[2])<<16 | uint32(e.Payload[3])<<24
		if got != 7 {
			t.Fatalf("expected-pax = %d, want 7", got)
		}
	}
}

func TestZeroPassengers(t *testing.T) {
	events := New(Config{Flights: 2, Passengers: 0, Seed: 1}).All()
	for _, e := range events {
		if e.Type == event.TypeGateReader {
			t.Fatal("gate-reader events with zero passengers")
		}
	}
	if len(events) != 16 {
		t.Fatalf("events = %d, want 16", len(events))
	}
}

func TestEventSizeHonored(t *testing.T) {
	events := New(Config{Flights: 1, Passengers: 2, EventSize: 512, Seed: 1}).All()
	for _, e := range events {
		if len(e.Payload) != 512 {
			t.Fatalf("payload = %d, want 512", len(e.Payload))
		}
	}
}

func TestStreamAndSeq(t *testing.T) {
	events := New(Config{Flights: 2, Passengers: 1, Stream: 1, Seed: 5}).All()
	for i, e := range events {
		if e.Stream != 1 {
			t.Fatalf("stream = %d, want 1", e.Stream)
		}
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Fatal("seq not strictly increasing")
		}
	}
}

func TestFeedsEDEToCompletion(t *testing.T) {
	// End-to-end sanity: the generated stream drives the EDE's
	// boarding and arrival rules for every flight.
	events := New(Config{Flights: 3, Passengers: 2, Seed: 11}).All()
	type miniState struct {
		boarded int
		arrived bool
	}
	states := map[event.FlightID]*miniState{}
	for _, e := range events {
		s := states[e.Flight]
		if s == nil {
			s = &miniState{}
			states[e.Flight] = s
		}
		switch {
		case e.Type == event.TypeGateReader:
			s.boarded++
		case e.Type == event.TypeDeltaStatus && e.Status == event.StatusAtGate:
			s.arrived = true
		}
	}
	for f, s := range states {
		if s.boarded != 2 || !s.arrived {
			t.Fatalf("flight %d: boarded=%d arrived=%v", f, s.boarded, s.arrived)
		}
	}
}
