package faa

import (
	"testing"

	"adaptmirror/internal/event"
)

func TestDeterministic(t *testing.T) {
	cfg := Config{Flights: 5, UpdatesPerFlight: 20, EventSize: 256, Seed: 42}
	a := New(cfg).All()
	b := New(cfg).All()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		la, lo, al, _ := a[i].Position()
		lb, lob, alb, _ := b[i].Position()
		if a[i].Flight != b[i].Flight || la != lb || lo != lob || al != alb {
			t.Fatalf("event %d differs between same-seed runs", i)
		}
	}
}

func TestTotalAndExhaustion(t *testing.T) {
	cfg := Config{Flights: 3, UpdatesPerFlight: 7, Seed: 1}
	g := New(cfg)
	if g.Remaining() != 21 || cfg.Total() != 21 {
		t.Fatalf("Remaining = %d, Total = %d, want 21", g.Remaining(), cfg.Total())
	}
	events := g.All()
	if len(events) != 21 {
		t.Fatalf("generated %d events, want 21", len(events))
	}
	if _, ok := g.Next(); ok {
		t.Fatal("Next after exhaustion must return false")
	}
	if g.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", g.Remaining())
	}
}

func TestPerFlightCounts(t *testing.T) {
	events := New(Config{Flights: 4, UpdatesPerFlight: 10, Seed: 9}).All()
	counts := map[event.FlightID]int{}
	for _, e := range events {
		if e.Type != event.TypeFAAPosition {
			t.Fatalf("unexpected type %s", e.Type)
		}
		counts[e.Flight]++
	}
	if len(counts) != 4 {
		t.Fatalf("flights seen = %d, want 4", len(counts))
	}
	for f, n := range counts {
		if n != 10 {
			t.Fatalf("flight %d has %d updates, want 10", f, n)
		}
	}
}

func TestSequenceMonotonic(t *testing.T) {
	events := New(Config{Flights: 2, UpdatesPerFlight: 5, Seed: 3}).All()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("seq not strictly increasing at %d", i)
		}
	}
}

func TestEventSizeHonored(t *testing.T) {
	for _, size := range []int{0, 24, 100, 4096} {
		events := New(Config{Flights: 1, UpdatesPerFlight: 2, EventSize: size, Seed: 1}).All()
		want := size
		if want < 24 {
			want = 24 // position triple minimum
		}
		for _, e := range events {
			if len(e.Payload) != want {
				t.Fatalf("size %d: payload = %d, want %d", size, len(e.Payload), want)
			}
		}
	}
}

func TestStreamStamped(t *testing.T) {
	events := New(Config{Flights: 1, UpdatesPerFlight: 3, Stream: 2, Seed: 1}).All()
	for _, e := range events {
		if e.Stream != 2 {
			t.Fatalf("stream = %d, want 2", e.Stream)
		}
	}
}

func TestPositionsPlausible(t *testing.T) {
	events := New(Config{Flights: 3, UpdatesPerFlight: 50, Seed: 7}).All()
	for _, e := range events {
		lat, lon, alt, ok := e.Position()
		if !ok {
			t.Fatal("position must decode")
		}
		if lat < 20 || lat > 55 || lon < -130 || lon > -65 {
			t.Fatalf("implausible position %v,%v", lat, lon)
		}
		if alt < 0 || alt > 35000 {
			t.Fatalf("implausible altitude %v", alt)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := New(Config{})
	if g.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1 (1 flight × 1 update)", g.Remaining())
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Flights: 50, UpdatesPerFlight: 100, EventSize: 1024, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(cfg)
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
	}
}
