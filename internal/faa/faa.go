// Package faa synthesizes the 'flight positions' data stream the
// paper's experiments replay from FAA radar captures. Real FAA feeds
// are proprietary; this generator reproduces the properties the
// mirroring framework depends on — many flights, high-rate per-flight
// position updates where later reports supersede earlier ones, and a
// configurable event size (the swept axis of Figures 4 and 6) — from a
// deterministic seed, so experiments are repeatable.
package faa

import (
	"math/rand"

	"adaptmirror/internal/event"
)

// Config parameterizes a stream.
type Config struct {
	// Flights is the number of concurrently tracked flights.
	Flights int
	// UpdatesPerFlight is how many position reports each flight emits.
	UpdatesPerFlight int
	// EventSize is the payload size in bytes (experiments sweep
	// 0-8 KB; the position triple occupies the first 24 bytes).
	EventSize int
	// Stream is the stream index stamped on events (the vector
	// timestamp component).
	Stream uint8
	// Seed makes the trajectories reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Flights <= 0 {
		c.Flights = 1
	}
	if c.UpdatesPerFlight <= 0 {
		c.UpdatesPerFlight = 1
	}
	return c
}

// Total returns the number of events the stream will produce.
func (c Config) Total() int {
	c = c.withDefaults()
	return c.Flights * c.UpdatesPerFlight
}

// flight is one synthetic trajectory: a great-circle-ish linear path
// with altitude profile and per-step jitter.
type flight struct {
	id         event.FlightID
	lat, lon   float64
	dLat, dLon float64
	alt        float64
	climbing   bool
	remaining  int
}

// Generator produces the stream: flights emit position updates in
// round-robin interleave (as a merged radar feed would).
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	flights []*flight
	next    int
	seq     uint64
	left    int
}

// New returns a generator for cfg.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng, left: cfg.Total()}
	for i := 0; i < cfg.Flights; i++ {
		oLat := 25 + rng.Float64()*25 // continental US-ish band
		oLon := -125 + rng.Float64()*55
		dLat := 25 + rng.Float64()*25
		dLon := -125 + rng.Float64()*55
		g.flights = append(g.flights, &flight{
			id:        event.FlightID(i + 1),
			lat:       oLat,
			lon:       oLon,
			dLat:      (dLat - oLat) / float64(cfg.UpdatesPerFlight),
			dLon:      (dLon - oLon) / float64(cfg.UpdatesPerFlight),
			alt:       0,
			climbing:  true,
			remaining: cfg.UpdatesPerFlight,
		})
	}
	return g
}

// Remaining returns how many events are left to generate.
func (g *Generator) Remaining() int { return g.left }

// Next returns the next position event, or (nil, false) when the
// stream is exhausted.
func (g *Generator) Next() (*event.Event, bool) {
	for g.left > 0 {
		f := g.flights[g.next]
		g.next = (g.next + 1) % len(g.flights)
		if f.remaining == 0 {
			continue
		}
		f.remaining--
		g.left--
		g.seq++

		f.lat += f.dLat + (g.rng.Float64()-0.5)*0.01
		f.lon += f.dLon + (g.rng.Float64()-0.5)*0.01
		if f.climbing {
			f.alt += 1500
			if f.alt >= 35000 {
				f.alt = 35000
				f.climbing = false
			}
		} else if f.remaining < 20 {
			f.alt -= 1500
			if f.alt < 0 {
				f.alt = 0
			}
		}
		e := event.NewPosition(f.id, g.seq, f.lat, f.lon, f.alt, g.cfg.EventSize)
		e.Stream = g.cfg.Stream
		return e, true
	}
	return nil, false
}

// All drains the generator into a slice.
func (g *Generator) All() []*event.Event {
	out := make([]*event.Event, 0, g.left)
	for {
		e, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
